//! The socket layer: a minimal HTTP/1.1 server on `std::net`.
//!
//! Scope (documented in `README.md`): request line + headers + body
//! framed by `Content-Length`; responses always close the connection
//! (`Connection: close`), so clients never need chunked decoding, and a
//! worker owns exactly one connection at a time. This is the smallest
//! protocol surface that `curl`, load generators and the smoke test all
//! speak without a client library.

use crate::{respond, Request, Response};
use aw_core::ExtractionService;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted header block (request line + headers).
const MAX_HEAD: usize = 64 * 1024;
/// Largest accepted body (a bundle or a batch of pages).
const MAX_BODY: usize = 64 * 1024 * 1024;
/// Per-read/-write socket timeout: a fully stalled client errors out of
/// the next I/O call.
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Wall-clock cap on one whole request's read phase: a *trickling*
/// client (one byte every few seconds keeps each read under
/// [`IO_TIMEOUT`]) is still cut off here instead of pinning its
/// connection worker indefinitely.
const REQUEST_DEADLINE: Duration = Duration::from_secs(30);
/// Accept-poll interval while idle (the listener is non-blocking so
/// workers can observe shutdown).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A configured-but-not-yet-running HTTP front end over an
/// [`ExtractionService`].
pub struct Server {
    listener: TcpListener,
    service: Arc<ExtractionService>,
    workers: usize,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port). The
    /// default worker count matches the service executor's thread count.
    pub fn bind(service: Arc<ExtractionService>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let workers = service.executor().threads();
        Ok(Server {
            listener,
            service,
            workers,
        })
    }

    /// Sets the connection-worker count (clamped to ≥ 1). Each worker
    /// owns one connection at a time; extraction inside a request still
    /// runs on the shared executor, whatever this count is.
    pub fn workers(mut self, workers: usize) -> Server {
        self.workers = workers.max(1);
        self
    }

    /// The bound address — read the actual port here after binding `:0`.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the worker team and returns the running server's handle.
    pub fn start(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let spawned = self.listener.try_clone().and_then(|listener| {
                let service = Arc::clone(&self.service);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("aw-serve-{i}"))
                    .spawn(move || worker_loop(listener, service, stop))
            });
            match spawned {
                Ok(handle) => threads.push(handle),
                Err(e) => {
                    // A partial team must not leak: stop and join the
                    // workers already running (each holds a cloned
                    // listener that would otherwise keep the port bound
                    // and keep serving with no handle to stop them).
                    stop.store(true, Ordering::Relaxed);
                    for handle in threads {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ServerHandle {
            addr,
            stop,
            threads,
        })
    }
}

/// A running server: hold it to keep serving, [`ServerHandle::shutdown`]
/// to stop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every worker to stop accepting and waits for them to
    /// finish their in-flight connections.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Blocks until the workers exit (they only exit on shutdown, so
    /// this is "serve forever" for a CLI process).
    pub fn join(mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker's accept loop: poll the shared non-blocking listener,
/// serve each accepted connection to completion.
fn worker_loop(listener: TcpListener, service: Arc<ExtractionService>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One request per connection; failures (bad framing,
                // disconnects) drop the connection, never the worker —
                // and neither does a panic inside request handling (an
                // evaluation bug must cost one connection, not silently
                // retire an accept loop until the server goes deaf).
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = serve_connection(stream, &service);
                }));
                if result.is_err() {
                    eprintln!("aw-serve: request handler panicked; connection dropped");
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (EMFILE, resets): back off briefly.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_connection(mut stream: TcpStream, service: &ExtractionService) -> std::io::Result<()> {
    // The listener is non-blocking for shutdown polling; on platforms
    // where accepted sockets inherit that flag (macOS/BSD, Windows —
    // not Linux) the stream must be reset to blocking or every read
    // would fail with WouldBlock before the timeouts even apply.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let deadline = std::time::Instant::now() + REQUEST_DEADLINE;
    let (response, body_maybe_unread) = match read_request(&mut stream, deadline) {
        Ok(request) => (respond(service, &request), false),
        Err(HttpError::Status(status, message)) => (Response::error(status, message), true),
        Err(HttpError::Io(e)) => return Err(e),
    };
    write_response(&mut stream, &response)?;
    if body_maybe_unread {
        // The client may still be uploading the body we refused (413,
        // bad framing). Closing with unread data would send a TCP RST
        // that can discard the queued error response on the client
        // side; signal end-of-response and drain what's in flight so
        // the client actually reads its error.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        drain(&mut stream, deadline);
    }
    Ok(())
}

/// Reads and discards the client's remaining upload (bounded by a byte
/// cap, the socket read timeout and the request deadline) so the error
/// response is not clobbered by a reset.
fn drain(stream: &mut TcpStream, deadline: std::time::Instant) {
    let mut chunk = [0u8; 4096];
    let mut budget = MAX_BODY;
    while budget > 0 && std::time::Instant::now() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// A framing-level failure: either an HTTP error to report to the
/// client, or an I/O error that ends the connection silently.
enum HttpError {
    Status(u16, String),
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

fn bad(status: u16, message: impl Into<String>) -> HttpError {
    HttpError::Status(status, message.into())
}

/// Reads and parses one request: request line, headers, and a
/// `Content-Length`-framed body. `deadline` caps the whole read phase
/// in wall-clock time — per-read timeouts alone would let a trickling
/// client (one byte per few seconds) hold the worker indefinitely.
fn read_request(
    stream: &mut TcpStream,
    deadline: std::time::Instant,
) -> Result<Request, HttpError> {
    let overdue = || bad(408, "request read deadline exceeded");
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Read until the end of the header block.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(bad(400, "header block too large"));
        }
        if std::time::Instant::now() >= deadline {
            return Err(overdue());
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad(400, "connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head =
        std::str::from_utf8(&buf[..head_end]).map_err(|_| bad(400, "request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(bad(400, format!("malformed request line {request_line:?}")));
    }
    let mut content_length = 0usize;
    let mut expects_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| bad(400, format!("bad Content-Length {:?}", value.trim())))?;
        } else if name.eq_ignore_ascii_case("expect")
            && value.trim().eq_ignore_ascii_case("100-continue")
        {
            expects_continue = true;
        } else if name.eq_ignore_ascii_case("transfer-encoding")
            && !value.trim().eq_ignore_ascii_case("identity")
        {
            // Bodies are framed by Content-Length only; silently
            // treating a chunked request as body-less would misroute it.
            return Err(bad(
                501,
                "transfer codings are not supported; send Content-Length",
            ));
        }
    }
    if content_length > MAX_BODY {
        return Err(bad(413, "request body too large"));
    }

    // The body: whatever followed the head in the buffer, plus the rest.
    let mut body = buf[head_end + 4..].to_vec();
    // curl sends `Expect: 100-continue` for bodies over 1 KB and waits
    // up to a second for the interim response before transmitting — a
    // silent per-request stall unless we answer it.
    if expects_continue && body.len() < content_length {
        stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        stream.flush()?;
    }
    while body.len() < content_length {
        if std::time::Instant::now() >= deadline {
            return Err(overdue());
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    // The body stays raw bytes: `POST /wrappers` accepts v3 binary
    // bundles, and the JSON endpoints validate UTF-8 in the router.

    // Strip any query string: the protocol routes on the path alone.
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Request {
        method: method.to_string(),
        path,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        501 => "Not Implemented",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
