//! `aw-reactor`: the event-driven serving engine.
//!
//! One reactor thread multiplexes every connection over `poll(2)`
//! (declared directly against the platform C library — the build has no
//! crates.io access, and `std` already links libc), driving
//! per-connection state machines: read buffer → parse (`crate::proto`)
//! → route → write buffer. The protocol is HTTP/1.1 with **keep-alive
//! and pipelining**: a connection serves any number of requests,
//! responses always in request order.
//!
//! ## Executor handoff and the wake pipe
//!
//! Extraction is CPU work and [`crate::respond`] blocks on the shared
//! `aw_pool::Executor`, so the reactor never calls it inline (except
//! `GET /healthz`, see below). A parsed request becomes a job on a
//! **bounded dispatch queue** drained by a small team of service
//! workers; each worker routes the request (extraction still lands on
//! the shared executor) and pushes the finished response onto a
//! completion queue, then writes one byte into the reactor's **wake
//! pipe** (a non-blocking `UnixStream` pair) so the `poll` call returns
//! immediately and the response bytes are queued on the right
//! connection. At most one request per connection is in flight —
//! pipelined successors wait in the read buffer, which is what makes
//! in-order responses structural rather than scheduled.
//!
//! ## Backpressure and deadlines
//!
//! Two bounds, two behaviors:
//!
//! * **Inflight bound** (`Server::queue_depth`): a request that finds
//!   the dispatch queue full is answered `503` + `Retry-After: 1`
//!   immediately — shed, not queued. `GET /healthz` bypasses the queue
//!   entirely (it is one atomic snapshot read), so load balancers still
//!   get liveness answers from a saturated server.
//! * **Accept bound** (`Server::max_connections`): at the cap the
//!   listener drops out of the poll set; new connections wait in the
//!   kernel backlog instead of growing reactor state.
//!
//! Per-connection deadlines defend against slowloris clients: a
//! *started* request must finish arriving within
//! `Server::read_deadline` (firing it answers `408 Request Timeout` —
//! headers parsed or not, never a silent drop), and a connection
//! sitting idle between requests closes quietly after
//! `Server::idle_timeout`.
//!
//! Every served request records its wall time (request fully parsed →
//! response queued) into the service's
//! [`aw_core::LatencyHistogram`], surfaced as the `latency` object of
//! `GET /wrappers` and the bench report's `service.latency_*` fields.

use crate::proto::{encode_response, parse_head, HeadInfo, HeadParse, MAX_HEAD};
use crate::{respond, Request, Response};
use aw_core::ExtractionService;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// poll(2), dependency-free: `std` links the platform C library already,
// so the one symbol the reactor needs can be declared directly.

#[repr(C)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

// Identical values across Linux and the BSDs (incl. macOS).
const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

#[cfg(target_os = "macos")]
type Nfds = std::ffi::c_uint;
#[cfg(not(target_os = "macos"))]
type Nfds = std::ffi::c_ulong;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::ffi::c_int) -> std::ffi::c_int;
}

/// Blocks until an fd is ready or `timeout` passes. Errors (EINTR
/// included) report as "nothing ready": the loop re-derives all state
/// from scratch each round, so a spurious empty wakeup is always safe.
fn poll_ready(fds: &mut [PollFd], timeout: Duration) -> bool {
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, ms) };
    n > 0
}

// ---------------------------------------------------------------------
// Dispatch: the bounded job queue between the reactor and its workers.

/// How long a connection being closed for a protocol error keeps
/// draining the client's in-flight upload (so the queued error response
/// is not clobbered by a TCP reset), at most.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);
/// Upper bound on one poll round's timeout — keeps the stop flag
/// observed promptly even if a wake byte is ever lost.
const MAX_POLL_TIMEOUT: Duration = Duration::from_millis(500);

struct Job {
    slot: usize,
    generation: u64,
    request: Request,
    started: Instant,
}

struct Completion {
    slot: usize,
    generation: u64,
    response: Response,
    started: Instant,
    /// The handler panicked: the response is a synthesized 500 and the
    /// connection closes after it (its state is no longer trusted).
    panicked: bool,
}

/// Shared reactor/worker state. `pub(crate)` so [`crate::ServerHandle`]
/// can hold it for shutdown wakeups.
pub(crate) struct Dispatch {
    queue: Mutex<VecDeque<Job>>,
    queue_depth: usize,
    ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    stop: Arc<AtomicBool>,
    /// Write half of the wake pipe (workers + shutdown). Non-blocking:
    /// a full pipe means wakeups are already pending, so a dropped
    /// byte is harmless.
    wake_tx: Mutex<UnixStream>,
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Dispatch {
    /// Queues a job unless the inflight bound is hit.
    fn try_enqueue(&self, job: Job) -> Result<(), ()> {
        {
            let mut queue = lock(&self.queue);
            if queue.len() >= self.queue_depth {
                return Err(());
            }
            queue.push_back(job);
        }
        self.ready.notify_one();
        Ok(())
    }

    /// Hands a finished response back and wakes the reactor.
    fn complete(&self, completion: Completion) {
        lock(&self.completions).push(completion);
        let _ = lock(&self.wake_tx).write(&[1]);
    }

    /// Wakes both the reactor (wake pipe) and any parked workers
    /// (condvar) so they observe the stop flag — the shutdown path.
    pub(crate) fn interrupt(&self) {
        self.ready.notify_all();
        let _ = lock(&self.wake_tx).write(&[1]);
    }
}

/// One service worker: drain the dispatch queue, route each request
/// (extraction runs on the shared executor inside `respond`), hand the
/// response back through the completion queue + wake pipe.
fn worker_loop(dispatch: Arc<Dispatch>, service: Arc<ExtractionService>) {
    loop {
        let job = {
            let mut queue = lock(&dispatch.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if dispatch.stop.load(Ordering::Relaxed) {
                    return;
                }
                queue = dispatch
                    .ready
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            respond(&service, &job.request)
        }));
        let (response, panicked) = match outcome {
            Ok(response) => (response, false),
            Err(_) => {
                eprintln!("aw-serve: request handler panicked; connection dropped");
                (Response::error(500, "request handler panicked"), true)
            }
        };
        dispatch.complete(Completion {
            slot: job.slot,
            generation: job.generation,
            response,
            started: job.started,
            panicked,
        });
    }
}

// ---------------------------------------------------------------------
// Per-connection state machine.

/// Why the state machine stopped consuming its read buffer.
enum ParsePhase {
    /// Waiting for (more of) a request.
    Reading,
    /// A request is dispatched; successors wait in the buffer.
    Inflight,
    /// A response with close semantics is queued; no more parsing.
    Closing,
}

struct Conn {
    stream: TcpStream,
    generation: u64,
    /// Bytes received but not yet consumed by a parsed request.
    buf: Vec<u8>,
    /// Resume point for the `\r\n\r\n` scan (avoids O(n²) rescans).
    scanned: usize,
    /// The current request's parsed head, while its body accumulates.
    head: Option<HeadInfo>,
    sent_continue: bool,
    /// When the first byte of the pending request arrived — arms the
    /// read deadline; `None` between requests (idle timeout instead).
    request_started: Option<Instant>,
    /// Set while a request is dispatched: whether its response may keep
    /// the connection alive.
    inflight_keep_alive: Option<bool>,
    /// Last time this connection finished a request (or was accepted).
    idle_since: Instant,
    out: Vec<u8>,
    out_pos: usize,
    close_after_flush: bool,
    /// Write side shut, discarding the client's tail so the error
    /// response survives (mirrors the blocking loop's drain).
    draining: bool,
    drain_deadline: Instant,
    peer_closed: bool,
    /// Terminal: swept from the slab at the end of the poll round.
    closed: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64, now: Instant) -> Conn {
        Conn {
            stream,
            generation,
            buf: Vec::new(),
            scanned: 0,
            head: None,
            sent_continue: false,
            request_started: None,
            inflight_keep_alive: None,
            idle_since: now,
            out: Vec::new(),
            out_pos: 0,
            close_after_flush: false,
            draining: false,
            drain_deadline: now,
            peer_closed: false,
            closed: false,
        }
    }

    fn inflight(&self) -> bool {
        self.inflight_keep_alive.is_some()
    }

    /// The next moment this connection needs attention with no I/O at
    /// all; `None` while a response is being computed (the executor is
    /// bounded work, not client-controlled).
    fn deadline(&self, idle_timeout: Duration, read_deadline: Duration) -> Option<Instant> {
        if self.closed {
            return None;
        }
        if self.draining {
            return Some(self.drain_deadline);
        }
        if self.inflight() {
            return None;
        }
        match self.request_started {
            Some(started) => Some(started + read_deadline),
            None => Some(self.idle_since + idle_timeout),
        }
    }
}

// ---------------------------------------------------------------------
// The reactor proper.

/// Spawns the reactor thread and its service workers for a configured
/// [`crate::Server`] (called by `Server::start` in non-blocking mode).
pub(crate) fn start(server: crate::Server) -> std::io::Result<crate::ServerHandle> {
    let crate::Server {
        listener,
        service,
        workers,
        max_connections,
        queue_depth,
        idle_timeout,
        read_deadline,
        ..
    } = server;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let dispatch = Arc::new(Dispatch {
        queue: Mutex::new(VecDeque::new()),
        queue_depth,
        ready: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        stop: Arc::clone(&stop),
        wake_tx: Mutex::new(wake_tx),
    });

    let mut threads = Vec::with_capacity(workers + 1);
    let spawn_all = |threads: &mut Vec<std::thread::JoinHandle<()>>| -> std::io::Result<()> {
        {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let dispatch = Arc::clone(&dispatch);
            threads.push(
                std::thread::Builder::new()
                    .name("aw-reactor".into())
                    .spawn(move || {
                        Reactor {
                            listener,
                            service,
                            stop,
                            dispatch,
                            wake_rx,
                            max_connections,
                            idle_timeout,
                            read_deadline,
                            slab: Vec::new(),
                            next_generation: 0,
                        }
                        .run()
                    })?,
            );
        }
        for i in 0..workers {
            let service = Arc::clone(&service);
            let dispatch = Arc::clone(&dispatch);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("aw-serve-{i}"))
                    .spawn(move || worker_loop(dispatch, service))?,
            );
        }
        Ok(())
    };
    if let Err(e) = spawn_all(&mut threads) {
        // A partial team must not leak: stop and join whatever spawned.
        stop.store(true, Ordering::Relaxed);
        dispatch.interrupt();
        for handle in threads {
            let _ = handle.join();
        }
        return Err(e);
    }
    Ok(crate::ServerHandle {
        addr,
        stop,
        threads,
        dispatch: Some(dispatch),
    })
}

struct Reactor {
    listener: TcpListener,
    service: Arc<ExtractionService>,
    stop: Arc<AtomicBool>,
    dispatch: Arc<Dispatch>,
    wake_rx: UnixStream,
    max_connections: usize,
    idle_timeout: Duration,
    read_deadline: Duration,
    slab: Vec<Option<Conn>>,
    next_generation: u64,
}

impl Reactor {
    fn run(mut self) {
        while !self.stop.load(Ordering::Relaxed) {
            // Assemble this round's poll set. fds[0] is the wake pipe,
            // fds[1] the listener (present only under the accept cap);
            // the map ties remaining entries back to slab slots.
            let live = self.slab.iter().flatten().count();
            let accepting = live < self.max_connections;
            let mut fds: Vec<PollFd> = Vec::with_capacity(live + 2);
            let mut slots: Vec<usize> = Vec::with_capacity(live);
            fds.push(PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            if accepting {
                fds.push(PollFd {
                    fd: self.listener.as_raw_fd(),
                    events: POLLIN,
                    revents: 0,
                });
            }
            let mut next_deadline: Option<Instant> = None;
            for (slot, conn) in self.slab.iter().enumerate() {
                let Some(conn) = conn else { continue };
                if let Some(deadline) = conn.deadline(self.idle_timeout, self.read_deadline) {
                    next_deadline =
                        Some(next_deadline.map_or(deadline, |d: Instant| d.min(deadline)));
                }
                let mut events = 0i16;
                if conn.out_pos < conn.out.len() {
                    events |= POLLOUT;
                } else if conn.inflight() {
                    // Response being computed, nothing to write yet:
                    // leave the fd out of the set (pipelined bytes wait
                    // in the kernel buffer — itself backpressure).
                    continue;
                }
                if !conn.peer_closed && !conn.inflight() {
                    events |= POLLIN;
                }
                if events == 0 {
                    continue;
                }
                fds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                slots.push(slot);
            }

            let now = Instant::now();
            let timeout = next_deadline
                .map(|deadline| deadline.saturating_duration_since(now))
                .map_or(MAX_POLL_TIMEOUT, |until| until.min(MAX_POLL_TIMEOUT));
            poll_ready(&mut fds, timeout);
            if self.stop.load(Ordering::Relaxed) {
                break;
            }

            // Wake pipe: drain it, then collect completions.
            if fds[0].revents != 0 {
                let mut sink = [0u8; 64];
                while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }
            let completions = std::mem::take(&mut *lock(&self.dispatch.completions));
            for completion in completions {
                self.on_completion(completion);
            }

            // New connections.
            if accepting && fds[1].revents != 0 {
                self.accept_ready();
            }

            // Connection I/O.
            let first_conn = if accepting { 2 } else { 1 };
            for (i, fd) in fds.iter().enumerate().skip(first_conn) {
                let slot = slots[i - first_conn];
                if fd.revents == 0 {
                    continue;
                }
                if fd.revents & (POLLERR | POLLNVAL) != 0 {
                    self.close(slot);
                    continue;
                }
                if fd.revents & (POLLIN | POLLHUP) != 0 {
                    self.readable(slot);
                }
                if fd.revents & POLLOUT != 0 {
                    self.writable(slot);
                }
            }

            // Deadlines.
            let now = Instant::now();
            for slot in 0..self.slab.len() {
                let Some(conn) = &self.slab[slot] else {
                    continue;
                };
                let due = conn
                    .deadline(self.idle_timeout, self.read_deadline)
                    .is_some_and(|deadline| deadline <= now);
                if due {
                    self.deadline_fired(slot);
                }
            }

            // Sweep closed slots.
            for conn in &mut self.slab {
                if conn.as_ref().is_some_and(|c| c.closed) {
                    *conn = None;
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            if self.slab.iter().flatten().count() >= self.max_connections {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.next_generation += 1;
                    let conn = Conn::new(stream, self.next_generation, Instant::now());
                    let slot = self.slab.iter().position(Option::is_none);
                    match slot {
                        Some(slot) => self.slab[slot] = Some(conn),
                        None => self.slab.push(Some(conn)),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // Transient accept errors (EMFILE, resets): next round.
                Err(_) => return,
            }
        }
    }

    fn conn(&mut self, slot: usize) -> Option<&mut Conn> {
        self.slab.get_mut(slot).and_then(Option::as_mut)
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conn(slot) {
            conn.closed = true;
        }
    }

    /// Appends an encoded response (recording its latency) and decides
    /// the connection's fate; then tries to flush opportunistically.
    fn queue_response(
        &mut self,
        slot: usize,
        response: &Response,
        keep_alive: bool,
        retry_after: Option<u32>,
        started: Instant,
    ) {
        self.service.latency().record(started.elapsed());
        let Some(conn) = self.conn(slot) else { return };
        let bytes = encode_response(response, keep_alive, retry_after);
        conn.out.extend_from_slice(&bytes);
        if !keep_alive {
            conn.close_after_flush = true;
        }
        conn.idle_since = Instant::now();
    }

    /// Runs the parse-route step over a connection's read buffer until
    /// it needs more bytes, dispatches a request, or decides to close
    /// (consecutive fully-buffered requests are consumed inside
    /// [`Reactor::step_after_response`]).
    fn process_buffer(&mut self, slot: usize) {
        let _ = self.parse_step(slot);
    }

    /// One parse attempt. Returns what the connection is now waiting
    /// on; loops happen via [`Reactor::step_after_response`].
    fn parse_step(&mut self, slot: usize) -> ParsePhase {
        let Some(conn) = self.conn(slot) else {
            return ParsePhase::Closing;
        };
        if conn.closed || conn.draining || conn.close_after_flush || conn.inflight() {
            return if conn.inflight() {
                ParsePhase::Inflight
            } else {
                ParsePhase::Closing
            };
        }
        if conn.head.is_none() {
            if conn.buf.is_empty() {
                conn.request_started = None;
                return ParsePhase::Reading;
            }
            if conn.request_started.is_none() {
                conn.request_started = Some(Instant::now());
            }
            match parse_head(&conn.buf, conn.scanned) {
                HeadParse::Incomplete { scanned } => {
                    conn.scanned = scanned;
                    return ParsePhase::Reading;
                }
                HeadParse::Error(status, message) => {
                    let started = Instant::now();
                    let response = Response::error(status, message);
                    self.queue_response(slot, &response, false, None, started);
                    return ParsePhase::Closing;
                }
                HeadParse::Ready(head) => {
                    conn.scanned = 0;
                    conn.head = Some(head);
                }
            }
        }
        let Some(conn) = self.conn(slot) else {
            return ParsePhase::Closing;
        };
        let head = conn.head.as_ref().expect("head parsed above");
        let total = head.head_len + head.content_length;
        if conn.buf.len() < total {
            if head.expects_continue && !conn.sent_continue {
                // The interim response curl waits on before uploading.
                conn.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                conn.sent_continue = true;
                self.writable(slot);
            }
            return ParsePhase::Reading;
        }

        // A complete request: take it off the buffer and route it.
        let head = conn.head.take().expect("head parsed above");
        let body = conn.buf[head.head_len..total].to_vec();
        conn.buf.drain(..total);
        conn.scanned = 0;
        conn.sent_continue = false;
        conn.request_started = None;
        let generation = conn.generation;
        let keep_alive = head.keep_alive;
        let started = Instant::now();
        let request = Request {
            method: head.method,
            path: head.path,
            body,
        };

        if request.method == "GET" && request.path == "/healthz" {
            // Answered inline on the reactor: one allocation-light
            // snapshot read, and it must work even when the dispatch
            // queue is saturated — overload may not blind the balancer.
            let response = respond(&self.service, &request);
            self.queue_response(slot, &response, keep_alive, None, started);
            return self.step_after_response(slot);
        }

        let job = Job {
            slot,
            generation,
            request,
            started,
        };
        if self.dispatch.try_enqueue(job).is_ok() {
            if let Some(conn) = self.conn(slot) {
                conn.inflight_keep_alive = Some(keep_alive);
            }
            ParsePhase::Inflight
        } else {
            // Inflight bound hit: shed with an explicit retry hint
            // instead of queuing without bound.
            let response = Response::error(503, "server overloaded, retry shortly");
            self.queue_response(slot, &response, keep_alive, Some(1), started);
            self.step_after_response(slot)
        }
    }

    /// After queueing a response: flush what fits, then continue with
    /// any pipelined successor already in the buffer.
    fn step_after_response(&mut self, slot: usize) -> ParsePhase {
        self.writable(slot);
        match self.conn(slot) {
            Some(conn) if !conn.closed && !conn.close_after_flush && !conn.draining => {
                self.parse_step(slot)
            }
            _ => ParsePhase::Closing,
        }
    }

    fn on_completion(&mut self, completion: Completion) {
        let Completion {
            slot,
            generation,
            response,
            started,
            panicked,
        } = completion;
        let Some(conn) = self.conn(slot) else { return };
        if conn.generation != generation || conn.closed {
            // The connection died while its request was in flight.
            return;
        }
        let keep_alive = conn.inflight_keep_alive.take().unwrap_or(false) && !panicked;
        let keep_alive = keep_alive && !conn.peer_closed;
        self.queue_response(slot, &response, keep_alive, None, started);
        let _ = self.step_after_response(slot);
    }

    fn readable(&mut self, slot: usize) {
        let mut chunk = [0u8; 16 * 1024];
        // Bounded rounds per event so one firehose connection cannot
        // starve the rest of the poll set.
        for _ in 0..8 {
            let Some(conn) = self.conn(slot) else { return };
            if conn.closed {
                return;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    self.peer_closed(slot);
                    return;
                }
                Ok(n) => {
                    if conn.draining {
                        continue; // discarding the refused tail
                    }
                    // Cap the buffered bytes: head cap while parsing
                    // headers (proto enforces it), plus never buffer
                    // more than one request + a head beyond it.
                    conn.buf.extend_from_slice(&chunk[..n]);
                    self.process_buffer(slot);
                    let Some(conn) = self.conn(slot) else { return };
                    if conn.inflight() && conn.buf.len() > MAX_HEAD {
                        // Pipelining flood while busy: stop reading
                        // (POLLIN is off while inflight anyway).
                        return;
                    }
                    if n < chunk.len() {
                        return; // likely drained the socket
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// The peer's write side closed. Mid-request that is a framing
    /// error (mirroring the blocking loop's messages); idle it is just
    /// a closed connection.
    fn peer_closed(&mut self, slot: usize) {
        let Some(conn) = self.conn(slot) else { return };
        if conn.draining {
            conn.closed = true;
            return;
        }
        if conn.inflight() {
            // The response is still coming; it will fail to write and
            // close then. Nothing to parse anymore.
            return;
        }
        if conn.close_after_flush {
            // Already finishing; let the flush path close.
            return;
        }
        if conn.buf.is_empty() && conn.head.is_none() {
            // Clean close between requests.
            if conn.out_pos >= conn.out.len() {
                conn.closed = true;
            }
            return;
        }
        let message = if conn.head.is_some() {
            "connection closed mid-body"
        } else {
            "connection closed mid-request"
        };
        let started = Instant::now();
        let response = Response::error(400, message);
        self.queue_response(slot, &response, false, None, started);
        self.writable(slot);
    }

    fn writable(&mut self, slot: usize) {
        let Some(conn) = self.conn(slot) else { return };
        if conn.closed {
            return;
        }
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    conn.closed = true;
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.closed = true;
                    return;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_flush && !conn.draining {
            if conn.peer_closed {
                conn.closed = true;
                return;
            }
            // Mirror the blocking loop: end our side, then discard the
            // client's remaining upload so the error response is read,
            // not clobbered by a reset.
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.draining = true;
            conn.drain_deadline = Instant::now() + DRAIN_TIMEOUT;
        }
    }

    fn deadline_fired(&mut self, slot: usize) {
        let Some(conn) = self.conn(slot) else { return };
        if conn.draining {
            conn.closed = true;
            return;
        }
        if conn.request_started.is_some() {
            // A request is mid-arrival: 408, headers parsed or not —
            // an explicit timeout, never a silent drop (the slowloris
            // defense stays observable to the client).
            let started = Instant::now();
            let response = Response::error(408, "request read deadline exceeded");
            self.queue_response(slot, &response, false, None, started);
            self.writable(slot);
        } else {
            // Idle keep-alive connection: quiet close.
            conn.closed = true;
        }
    }
}
