//! Exhaustive enumeration: φ on every nonempty subset of `L`.
//!
//! The baseline of Figures 2(a) and 2(b). Exponential — 2^|L| − 1 inductor
//! calls — so [`naive`] refuses label sets beyond a caller-supplied cap and
//! [`naive_call_count`] reports the theoretical cost for plotting when the
//! run itself is infeasible ("the naive method is not plotted when it gets
//! too large").

use crate::space::{EnumerationResult, SpaceBuilder};
use aw_induct::{ItemSet, WrapperInductor};
use std::fmt::Debug;

/// Hard cap above which [`naive`] panics instead of running for hours.
pub const NAIVE_MAX_LABELS: usize = 24;

/// Enumerates `W(L)` by brute force over all nonempty subsets.
///
/// # Panics
/// Panics if `labels.len() > NAIVE_MAX_LABELS`.
pub fn naive<I>(inductor: &I, labels: &ItemSet<I::Item>) -> EnumerationResult<I::Item>
where
    I: WrapperInductor,
    I::Item: Debug,
{
    assert!(
        labels.len() <= NAIVE_MAX_LABELS,
        "naive enumeration over {} labels would need {} inductor calls",
        labels.len(),
        naive_call_count(labels.len())
    );
    let items: Vec<I::Item> = labels.iter().copied().collect();
    let mut builder = SpaceBuilder::new();
    for mask in 1u64..(1u64 << items.len()) {
        let subset: ItemSet<I::Item> = items
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &x)| x)
            .collect();
        builder.induce(inductor, &subset);
    }
    builder.finish()
}

/// Number of φ calls naive enumeration needs for `n` labels (2^n − 1),
/// saturating at `u64::MAX`.
pub fn naive_call_count(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_induct::table::{example1_inductor, example1_labels};

    #[test]
    fn example1_has_eight_wrappers() {
        // §3: "the 32 subsets of L only result in 8 unique wrappers".
        let t = example1_inductor();
        let result = naive(&t, &example1_labels());
        assert_eq!(result.inductor_calls, 31); // nonempty subsets
        assert_eq!(result.len(), 8);
        let rules: Vec<&str> = result.wrappers.iter().map(|w| w.rule.as_str()).collect();
        for expected in [
            "cell(1,1)",
            "cell(2,1)",
            "cell(4,1)",
            "cell(4,2)",
            "cell(5,3)",
            "C1",
            "R4",
            "T",
        ] {
            assert!(rules.contains(&expected), "missing {expected}: {rules:?}");
        }
    }

    #[test]
    fn full_grid_labels_give_quadratic_space() {
        // §3: n² labels on an n×n table yield n² + 2n + 1 wrappers…
        // (cells + rows + columns + table). With every cell labeled,
        // singleton rows/columns coincide with cells only for 1×1.
        let n = 3;
        let t = aw_induct::TableInductor::new(n, n);
        let labels = t.universe();
        let result = naive(&t, &labels);
        assert_eq!(result.len(), (n * n + 2 * n + 1) as usize);
    }

    #[test]
    fn call_count_formula() {
        assert_eq!(naive_call_count(0), 0);
        assert_eq!(naive_call_count(5), 31);
        assert_eq!(naive_call_count(20), (1 << 20) - 1);
        assert_eq!(naive_call_count(64), u64::MAX);
        assert_eq!(naive_call_count(100), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "naive enumeration over 25 labels")]
    fn refuses_oversized_label_sets() {
        let t = aw_induct::TableInductor::new(5, 5);
        let labels = t.universe();
        let _ = naive(&t, &labels);
    }
}
