//! The `BottomUp` enumeration algorithm (§4.1, Algorithm 1).
//!
//! Works with any **well-behaved blackbox** inductor. Starting from the
//! empty set, it expands candidate label subsets one element at a time,
//! but only keeps the *closure* `φ̆(s) = φ(s) ∩ L` of each expansion —
//! the step that collapses the exponential subset lattice onto the (small)
//! lattice of closed sets. Theorem 2: at most `k · |L|` inductor calls,
//! where `k = |W(L)|`.

use crate::space::{EnumerationResult, SpaceBuilder};
use aw_induct::{ItemSet, WrapperInductor};
use std::collections::BTreeSet;
use std::fmt::Debug;

/// Enumerates `W(L)` with Algorithm 1.
pub fn bottom_up<I>(inductor: &I, labels: &ItemSet<I::Item>) -> EnumerationResult<I::Item>
where
    I: WrapperInductor,
    I::Item: Debug,
{
    let mut builder = SpaceBuilder::new();
    if labels.is_empty() {
        return builder.finish();
    }

    // Z holds candidate closed subsets keyed by (size, set) so that
    // `pop_first` yields the smallest set (step 4 of Algorithm 1).
    let mut z: BTreeSet<(usize, ItemSet<I::Item>)> = BTreeSet::new();
    // Sets ever expanded; the paper proves re-insertion cannot happen, but
    // the guard also protects against inductors that are *not* perfectly
    // well-behaved (e.g. LR corner cases).
    let mut expanded: BTreeSet<ItemSet<I::Item>> = BTreeSet::new();

    z.insert((0, ItemSet::new()));
    while let Some((_, s)) = z.pop_first() {
        if !expanded.insert(s.clone()) {
            continue;
        }
        for &l in labels.iter() {
            if s.contains(&l) {
                continue;
            }
            let mut seed = s.clone();
            seed.insert(l);
            // Step 7: w = φ(s ∪ ℓ); recorded in the space builder.
            let extraction = builder.induce(inductor, &seed);
            // Step 8: snew = φ̆(s ∪ ℓ).
            let snew: ItemSet<I::Item> = labels
                .iter()
                .copied()
                .filter(|x| extraction.contains(x))
                .collect();
            // Step 10–12: enqueue unless it is the full label set or known.
            if snew.len() < labels.len() && !expanded.contains(&snew) {
                z.insert((snew.len(), snew));
            }
        }
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive;
    use aw_induct::table::{example1_inductor, example1_labels, Cell};
    use aw_induct::TableInductor;

    #[test]
    fn reproduces_example_2() {
        // Example 2 traces BottomUp on Example 1 and ends with exactly the
        // 8 wrappers of Equation (2).
        let t = example1_inductor();
        let result = bottom_up(&t, &example1_labels());
        assert_eq!(result.len(), 8);
        let rules: BTreeSet<&str> = result.wrappers.iter().map(|w| w.rule.as_str()).collect();
        assert_eq!(
            rules,
            [
                "cell(1,1)",
                "cell(2,1)",
                "cell(4,1)",
                "cell(4,2)",
                "cell(5,3)",
                "C1",
                "R4",
                "T"
            ]
            .into_iter()
            .collect()
        );
    }

    #[test]
    fn theorem_1_matches_naive() {
        // Soundness + completeness vs. brute force.
        let t = example1_inductor();
        let labels = example1_labels();
        let by_naive = naive(&t, &labels).extraction_set();
        let by_bottom_up = bottom_up(&t, &labels).extraction_set();
        assert_eq!(by_naive, by_bottom_up);
    }

    #[test]
    fn theorem_2_call_bound() {
        // At most k · |L| calls.
        let t = example1_inductor();
        let labels = example1_labels();
        let result = bottom_up(&t, &labels);
        let k = result.len();
        assert!(
            result.inductor_calls <= k * labels.len(),
            "{} calls > k·|L| = {}",
            result.inductor_calls,
            k * labels.len()
        );
        // And exponentially fewer than naive for larger L (sanity).
        assert!(result.inductor_calls < 31);
    }

    #[test]
    fn empty_labels() {
        let t = example1_inductor();
        let result = bottom_up(&t, &ItemSet::new());
        assert!(result.is_empty());
        assert_eq!(result.inductor_calls, 0);
    }

    #[test]
    fn single_label() {
        let t = example1_inductor();
        let labels: ItemSet<Cell> = [Cell::new(2, 2)].into_iter().collect();
        let result = bottom_up(&t, &labels);
        assert_eq!(result.len(), 1);
        assert_eq!(result.inductor_calls, 1);
        assert_eq!(result.wrappers[0].rule, "cell(2,2)");
    }

    #[test]
    fn dense_labels_match_naive() {
        // 3×3 grid with 6 labels: cross-check against brute force.
        let t = TableInductor::new(3, 3);
        let labels: ItemSet<Cell> = [
            Cell::new(1, 1),
            Cell::new(1, 2),
            Cell::new(2, 1),
            Cell::new(2, 2),
            Cell::new(3, 3),
            Cell::new(3, 1),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            naive(&t, &labels).extraction_set(),
            bottom_up(&t, &labels).extraction_set()
        );
    }
}
