//! Common types for wrapper-space enumeration.
//!
//! §4: the wrapper space `W(L) = {φ(L₁) | L₁ ⊆ L}` is a set of *wrappers*,
//! and wrappers are identified by their output ("the score of a wrapper
//! only depends on its output", §6). [`EnumerationResult`] deduplicates by
//! extraction and remembers, for each distinct wrapper, the smallest label
//! subset that produced it plus the rule string.

use aw_induct::{ItemSet, WrapperInductor};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// One distinct wrapper discovered during enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumeratedWrapper<T: Ord> {
    /// The (smallest seen) label subset that induces this wrapper.
    pub seed: ItemSet<T>,
    /// φ(seed): the wrapper's output over the site's pages.
    pub extraction: ItemSet<T>,
    /// The rule in the inductor's wrapper language (display form).
    pub rule: String,
}

/// The result of an enumeration run.
#[derive(Clone, Debug)]
pub struct EnumerationResult<T: Ord> {
    /// Distinct wrappers, in deterministic (extraction) order.
    pub wrappers: Vec<EnumeratedWrapper<T>>,
    /// How many times φ (the blackbox inductor) was invoked. This is the
    /// metric of Figures 2(a) and 2(b).
    pub inductor_calls: usize,
}

impl<T: Ord + Copy + Debug> EnumerationResult<T> {
    /// Number of distinct wrappers (the `k` of Theorems 2 and 3).
    pub fn len(&self) -> usize {
        self.wrappers.len()
    }

    /// True when no wrappers were enumerated (empty label set).
    pub fn is_empty(&self) -> bool {
        self.wrappers.is_empty()
    }

    /// The extractions only, as a set-of-sets (for equivalence checks).
    pub fn extraction_set(&self) -> ItemSet<ItemSet<T>> {
        self.wrappers.iter().map(|w| w.extraction.clone()).collect()
    }

    /// The candidate set as parsed xpaths, for shared-prefix batch
    /// evaluation (`aw_xpath::BatchEvaluator`, `aw_rank::score_xpath_space`).
    ///
    /// Each entry pairs the wrapper's index in [`Self::wrappers`] with its
    /// rule parsed back from display form. Wrappers whose rules are not in
    /// the xpath fragment (LR/HLRT/TABLE languages) are skipped, so the
    /// result is empty for non-XPATH spaces.
    pub fn xpath_candidates(&self) -> Vec<(usize, aw_xpath::XPath)> {
        self.wrappers
            .iter()
            .enumerate()
            .filter_map(|(i, w)| aw_xpath::parse_xpath(&w.rule).ok().map(|xp| (i, xp)))
            .collect()
    }
}

/// Flattens many sites' enumerated spaces into one candidate set tagged
/// by site index, ready for site-sharded batch evaluation
/// (`aw_xpath::ShardedBatch::new`).
///
/// The i-th space gets shard key `i`; within a site, candidates keep
/// their [`EnumerationResult::xpath_candidates`] order, so the global
/// slot of candidate `c` of site `s` is
/// `sites[..s].candidate_counts.sum() + c`. Non-XPATH spaces contribute
/// nothing (their rules are not in the fragment).
pub fn sharded_xpath_space<'a, T, I>(spaces: I) -> Vec<(usize, aw_xpath::CompiledXPath)>
where
    T: Ord + Copy + Debug + 'a,
    I: IntoIterator<Item = &'a EnumerationResult<T>>,
{
    spaces
        .into_iter()
        .enumerate()
        .flat_map(|(site, space)| {
            space
                .xpath_candidates()
                .into_iter()
                .map(move |(_, xp)| (site, aw_xpath::CompiledXPath::compile(&xp)))
        })
        .collect()
}

/// Accumulates wrappers, deduplicating by extraction.
pub(crate) struct SpaceBuilder<T: Ord + Clone> {
    by_extraction: BTreeMap<ItemSet<T>, EnumeratedWrapper<T>>,
    calls: usize,
}

impl<T: Ord + Copy + Debug> SpaceBuilder<T> {
    pub(crate) fn new() -> Self {
        SpaceBuilder {
            by_extraction: BTreeMap::new(),
            calls: 0,
        }
    }

    /// Runs φ on `seed`, records the wrapper, and returns the extraction.
    pub(crate) fn induce<I>(&mut self, inductor: &I, seed: &ItemSet<T>) -> ItemSet<T>
    where
        I: WrapperInductor<Item = T>,
    {
        self.calls += 1;
        let extraction = inductor.extract(seed);
        let entry = self
            .by_extraction
            .entry(extraction.clone())
            .or_insert_with(|| EnumeratedWrapper {
                seed: seed.clone(),
                extraction: extraction.clone(),
                rule: inductor.rule(seed),
            });
        // Prefer the smallest (then lexicographically first) seed.
        if seed.len() < entry.seed.len() {
            entry.seed = seed.clone();
            entry.rule = inductor.rule(seed);
        }
        extraction
    }

    pub(crate) fn finish(self) -> EnumerationResult<T> {
        EnumerationResult {
            wrappers: self.by_extraction.into_values().collect(),
            inductor_calls: self.calls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_induct::table::{example1_inductor, Cell};

    #[test]
    fn builder_dedups_by_extraction() {
        let t = example1_inductor();
        let mut b = SpaceBuilder::new();
        // Two different seeds inducing the same column wrapper.
        let s1: ItemSet<Cell> = [Cell::new(1, 1), Cell::new(2, 1)].into_iter().collect();
        let s2: ItemSet<Cell> = [Cell::new(1, 1), Cell::new(2, 1), Cell::new(4, 1)]
            .into_iter()
            .collect();
        b.induce(&t, &s1);
        b.induce(&t, &s2);
        let result = b.finish();
        assert_eq!(result.inductor_calls, 2);
        assert_eq!(result.len(), 1);
        assert_eq!(result.wrappers[0].seed, s1, "smallest seed kept");
        assert_eq!(result.wrappers[0].rule, "C1");
    }

    #[test]
    fn empty_result() {
        let r: EnumerationResult<Cell> = SpaceBuilder::new().finish();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.extraction_set().is_empty());
    }

    #[test]
    fn non_xpath_spaces_have_no_xpath_candidates() {
        // TABLE rules ("C1", "R2", ...) are not in the fragment.
        let t = example1_inductor();
        let labels = aw_induct::table::example1_labels();
        let space = crate::top_down(&t, &labels);
        assert!(!space.is_empty());
        assert!(space.xpath_candidates().is_empty());
    }

    #[test]
    fn sharded_space_tags_each_sites_candidates() {
        use aw_induct::{Site, XPathInductor};

        let mk = |htmls: &[&str], texts: &[&str]| -> (Site, Vec<String>) {
            (
                Site::from_html(htmls),
                texts.iter().map(|s| s.to_string()).collect(),
            )
        };
        let (site_a, texts_a) = mk(
            &["<div class='list'><tr><td><u>ALPHA</u></td></tr>\
               <tr><td><u>BETA</u></td></tr></div>"],
            &["ALPHA", "BETA"],
        );
        let (site_b, texts_b) = mk(
            &["<table><tr><td><b>OMEGA</b></td></tr><tr><td><b>SIGMA</b></td></tr></table>"],
            &["OMEGA", "SIGMA"],
        );
        let space_of = |site: &Site, texts: &[String]| {
            let ind = XPathInductor::new(site);
            let labels: ItemSet<aw_dom::PageNode> =
                texts.iter().flat_map(|t| site.find_text(t)).collect();
            crate::top_down(&ind, &labels)
        };
        let sa = space_of(&site_a, &texts_a);
        let sb = space_of(&site_b, &texts_b);
        let tagged = sharded_xpath_space([&sa, &sb]);
        assert_eq!(tagged.len(), sa.len() + sb.len());
        // Site-major tagging: site 0's candidates first, then site 1's.
        assert!(tagged[..sa.len()].iter().all(|(k, _)| *k == 0));
        assert!(tagged[sa.len()..].iter().all(|(k, _)| *k == 1));
        // Tags line up with xpath_candidates order.
        for ((_, compiled), (_, xp)) in tagged[..sa.len()].iter().zip(sa.xpath_candidates()) {
            assert_eq!(compiled, &aw_xpath::CompiledXPath::compile(&xp));
        }
    }

    #[test]
    fn xpath_candidates_replay_their_extractions_through_the_batch_engine() {
        use aw_dom::PageNode;
        use aw_induct::{Site, XPathInductor};

        let site = Site::from_html(&[
            "<div class='list'><tr><td><u>ALPHA</u><br>1 Elm</td></tr>\
             <tr><td><u>BETA</u><br>2 Oak</td></tr></div>",
            "<div class='list'><tr><td><u>GAMMA</u><br>3 Fir</td></tr></div>",
        ]);
        let ind = XPathInductor::new(&site);
        let labels: ItemSet<PageNode> = ["ALPHA", "BETA", "1 Elm"]
            .iter()
            .flat_map(|t| site.find_text(t))
            .collect();
        let space = crate::top_down(&ind, &labels);
        let candidates = space.xpath_candidates();
        assert_eq!(
            candidates.len(),
            space.len(),
            "every XPATH rule parses back"
        );

        // Evaluating the whole candidate set through the batch engine
        // reproduces each wrapper's enumerated extraction.
        let paths: Vec<aw_xpath::XPath> = candidates.iter().map(|(_, xp)| xp.clone()).collect();
        let batch = aw_xpath::BatchEvaluator::from_xpaths(paths.iter());
        let mut replayed: Vec<ItemSet<PageNode>> = vec![ItemSet::new(); paths.len()];
        for p in 0..site.page_count() as u32 {
            for (slot, nodes) in batch.evaluate(site.page(p)).into_iter().enumerate() {
                replayed[slot].extend(nodes.into_iter().map(|id| PageNode::new(p, id)));
            }
        }
        for ((wrapper_idx, xp), replay) in candidates.iter().zip(&replayed) {
            let wrapper = &space.wrappers[*wrapper_idx];
            // The rendered xpath is documented to be slightly more general
            // than the feature semantics only when a wildcard step
            // appears; these clean candidates have none.
            if xp
                .steps
                .iter()
                .all(|s| s.test != aw_xpath::NodeTest::AnyElement)
            {
                assert_eq!(replay, &wrapper.extraction, "replay mismatch for {xp}");
            } else {
                assert!(wrapper.extraction.is_subset(replay), "{xp}");
            }
        }
    }
}
