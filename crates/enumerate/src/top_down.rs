//! The `TopDown` enumeration algorithm (§4.2, Algorithm 2).
//!
//! Requires a **feature-based** inductor. Starting from the full label set,
//! it repeatedly subdivides every known subset by each attribute; the
//! resulting family of subsets contains every closed set, so calling φ
//! once per subset enumerates the wrapper space. Theorem 3: exactly `k`
//! calls when distinct closed sets induce distinct wrappers.
//!
//! The charm (§5) is that `subdivision` never materializes the feature
//! space — crucial for LR, whose feature space is as large as the page.

use crate::space::{EnumerationResult, SpaceBuilder};
use aw_induct::{FeatureBased, ItemSet};
use std::collections::BTreeSet;
use std::fmt::Debug;

/// Enumerates `W(L)` with Algorithm 2.
pub fn top_down<I>(inductor: &I, labels: &ItemSet<I::Item>) -> EnumerationResult<I::Item>
where
    I: FeatureBased,
    I::Item: Debug,
{
    let mut builder = SpaceBuilder::new();
    if labels.is_empty() {
        return builder.finish();
    }

    let mut z: BTreeSet<ItemSet<I::Item>> = BTreeSet::new();
    z.insert(labels.clone());

    for attr in inductor.attributes(labels) {
        // Snapshot: sets created by this attribute are only subdivided by
        // *later* attributes, exactly as in Algorithm 2's nested loops.
        let snapshot: Vec<ItemSet<I::Item>> = z.iter().cloned().collect();
        for s in snapshot {
            for group in inductor.subdivision(&s, &attr) {
                debug_assert!(group.is_subset(&s));
                if !group.is_empty() {
                    z.insert(group);
                }
            }
        }
    }

    for s in &z {
        builder.induce(inductor, s);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom_up::bottom_up;
    use crate::naive::naive;
    use aw_induct::table::{example1_inductor, example1_labels, Cell};
    use aw_induct::TableInductor;

    #[test]
    fn reproduces_section_4_2_trace() {
        // §4.2 traces TopDown on Example 1: Z ends with 8 subsets and the
        // 8 wrappers of Equation (2).
        let t = example1_inductor();
        let result = top_down(&t, &example1_labels());
        assert_eq!(result.len(), 8);
        assert_eq!(result.inductor_calls, 8, "Theorem 3: exactly k calls");
    }

    #[test]
    fn agrees_with_naive_and_bottom_up() {
        let t = example1_inductor();
        let labels = example1_labels();
        let n = naive(&t, &labels).extraction_set();
        let b = bottom_up(&t, &labels).extraction_set();
        let d = top_down(&t, &labels).extraction_set();
        assert_eq!(n, d);
        assert_eq!(b, d);
    }

    #[test]
    fn fewer_calls_than_bottom_up() {
        let t = TableInductor::new(6, 6);
        let labels: ItemSet<Cell> = [
            Cell::new(1, 1),
            Cell::new(2, 1),
            Cell::new(3, 1),
            Cell::new(4, 2),
            Cell::new(5, 3),
            Cell::new(6, 1),
            Cell::new(2, 4),
        ]
        .into_iter()
        .collect();
        let bu = bottom_up(&t, &labels);
        let td = top_down(&t, &labels);
        assert_eq!(bu.extraction_set(), td.extraction_set());
        assert!(
            td.inductor_calls < bu.inductor_calls,
            "TopDown {} vs BottomUp {}",
            td.inductor_calls,
            bu.inductor_calls
        );
    }

    #[test]
    fn empty_labels() {
        let t = example1_inductor();
        let result = top_down(&t, &ItemSet::new());
        assert!(result.is_empty());
        assert_eq!(result.inductor_calls, 0);
    }

    #[test]
    fn single_label() {
        let t = example1_inductor();
        let labels: ItemSet<Cell> = [Cell::new(3, 3)].into_iter().collect();
        let result = top_down(&t, &labels);
        assert_eq!(result.len(), 1);
        assert_eq!(result.inductor_calls, 1);
    }
}
