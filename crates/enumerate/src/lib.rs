//! # aw-enum — wrapper-space enumeration
//!
//! §4 of the paper: given noisy labels `L` and a wrapper inductor φ,
//! efficiently enumerate the wrapper space `W(L) = {φ(L₁) | L₁ ⊆ L}`
//! without 2^|L| inductor calls.
//!
//! * [`naive()`] — the exhaustive baseline (2^|L| − 1 calls);
//! * [`bottom_up()`] — Algorithm 1, blackbox, ≤ `k·|L|` calls (Theorems 1–2);
//! * [`top_down()`] — Algorithm 2 for feature-based inductors, exactly `k`
//!   calls (Theorem 3).
//!
//! Applications normally reach this crate through `aw_core::Engine`
//! (`engine.enumerate` returns the typed `WrapperSpace` wrapper around
//! an [`EnumerationResult`]); the algorithms stay public for custom
//! inductors.
//!
//! ```
//! use aw_enum::{bottom_up, naive, top_down};
//! use aw_induct::table::{example1_inductor, example1_labels};
//!
//! let inductor = example1_inductor();
//! let labels = example1_labels(); // the 5 labels of Example 1 (2 wrong)
//! let space = top_down(&inductor, &labels);
//! assert_eq!(space.len(), 8);                 // Equation (2)
//! assert_eq!(space.inductor_calls, 8);        // Theorem 3
//! assert_eq!(space.extraction_set(), bottom_up(&inductor, &labels).extraction_set());
//! assert_eq!(space.extraction_set(), naive(&inductor, &labels).extraction_set());
//! ```

pub mod bottom_up;
pub mod naive;
pub mod space;
pub mod top_down;

pub use bottom_up::bottom_up;
pub use naive::{naive, naive_call_count, NAIVE_MAX_LABELS};
pub use space::{sharded_xpath_space, EnumeratedWrapper, EnumerationResult};
pub use top_down::top_down;
