//! Portable learned rules.
//!
//! Inside the framework a wrapper is identified by its output on the
//! training site (§6). A production deployment, though, learns once and
//! then extracts from *future* pages of the same script — the paper's
//! Yahoo! pipeline applies wrappers to freshly crawled pages. A
//! [`LearnedRule`] captures the rule itself, detached from any site, and
//! applies to any [`Document`].

use crate::config::WrapperLanguage;
use crate::learner::NtwOutcome;
use aw_dom::{serialize_with_spans, Document, NodeId};
use aw_induct::lr::scan_spans;
use aw_induct::{
    DomTableInductor, HlrtInductor, HlrtRule, LrInductor, LrRule, NodeSet, Site, TableRule,
    XPathInductor,
};
use aw_pool::Executor;
use aw_xpath::XPath;

/// A wrapper rule detached from its training site.
#[derive(Clone, Debug, PartialEq)]
pub enum LearnedRule {
    /// An xpath of the fragment (§5, Dalvi et al. 2009).
    XPath(XPath),
    /// A WIEN LR delimiter pair.
    Lr(LrRule),
    /// A WIEN HLRT rule.
    Hlrt(HlrtRule),
    /// A TABLE rule over the DOM grid (Example 1 grounded in `<tr>`/`<td>`
    /// coordinates).
    Table(TableRule),
}

impl LearnedRule {
    /// Learns the portable rule for `seed` labels on `site` in the given
    /// language. The seed is typically [`crate::LearnedWrapper::seed`] of
    /// the top-ranked wrapper.
    pub fn learn(site: &Site, language: WrapperLanguage, seed: &NodeSet) -> LearnedRule {
        match language {
            WrapperLanguage::XPath => LearnedRule::XPath(XPathInductor::new(site).xpath(seed)),
            WrapperLanguage::Lr => LearnedRule::Lr(LrInductor::new(site).learn(seed)),
            WrapperLanguage::Hlrt => LearnedRule::Hlrt(HlrtInductor::new(site).learn(seed)),
            WrapperLanguage::Table => LearnedRule::Table(DomTableInductor::new(site).learn(seed)),
        }
    }

    /// The wrapper language this rule belongs to.
    pub fn language(&self) -> WrapperLanguage {
        match self {
            LearnedRule::XPath(_) => WrapperLanguage::XPath,
            LearnedRule::Lr(_) => WrapperLanguage::Lr,
            LearnedRule::Hlrt(_) => WrapperLanguage::Hlrt,
            LearnedRule::Table(_) => WrapperLanguage::Table,
        }
    }

    /// Applies the rule to a page it has never seen, returning matched
    /// text nodes in document order.
    ///
    /// Caveat for [`LearnedRule::XPath`]: in the rare corner case where
    /// the learned feature set keeps a child-number without a tag at some
    /// ancestor position, the xpath form is slightly more general than
    /// the feature-set semantics used during ranking (documented on
    /// [`XPathInductor::xpath`]).
    pub fn apply(&self, doc: &Document) -> Vec<NodeId> {
        match self {
            LearnedRule::XPath(xp) => aw_xpath::evaluate(xp, doc),
            LearnedRule::Table(rule) => rule.apply(doc),
            _ => self.apply_serialized(&serialize_with_spans(doc)),
        }
    }

    /// Applies an LR/HLRT rule against a pre-serialized page, so a rule
    /// *set* serializes each page once, not once per rule.
    fn apply_serialized(&self, page: &aw_dom::SerializedPage) -> Vec<NodeId> {
        match self {
            // XPath and TABLE rules never take this path: they evaluate
            // against the document tree, not the serialized byte stream.
            LearnedRule::XPath(xp) => unreachable!("xpath rule {xp} applied as serialized"),
            LearnedRule::Table(rule) => unreachable!("table rule {rule} applied as serialized"),
            LearnedRule::Lr(rule) => {
                let mut out: Vec<NodeId> = scan_spans(&page.html, &rule.left, &rule.right)
                    .into_iter()
                    .flat_map(|(s, e)| page.nodes_in_range(s, e))
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
            LearnedRule::Hlrt(rule) => {
                let html = &page.html;
                let start = if rule.head.is_empty() {
                    Some(0)
                } else {
                    html.find(&rule.head).map(|i| i + rule.head.len())
                };
                let Some(start) = start else {
                    return Vec::new();
                };
                let end = if rule.tail.is_empty() {
                    Some(html.len())
                } else {
                    html[start..].rfind(&rule.tail).map(|i| start + i)
                };
                let Some(end) = end else { return Vec::new() };
                let region = &html[start..end];
                let mut out: Vec<NodeId> = scan_spans(region, &rule.lr.left, &rule.lr.right)
                    .into_iter()
                    .flat_map(|(s, e)| page.nodes_in_range(start + s, start + e))
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    /// Extracts the matched *text values* from a page.
    pub fn extract_values(&self, doc: &Document) -> Vec<String> {
        self.apply(doc)
            .into_iter()
            .filter_map(|id| doc.text(id).map(str::to_string))
            .collect()
    }

    /// The rule's display form (parsable back for xpath rules).
    #[deprecated(note = "use the `Display` impl (`to_string` / `{}`) instead")]
    pub fn display(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for LearnedRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnedRule::XPath(xp) => xp.fmt(f),
            LearnedRule::Lr(r) => r.fmt(f),
            LearnedRule::Hlrt(r) => r.fmt(f),
            LearnedRule::Table(r) => r.fmt(f),
        }
    }
}

/// A set of portable rules applied together.
///
/// XPath members are compiled once into a shared-prefix
/// [`aw_xpath::BatchEvaluator`], so applying the set to each freshly
/// crawled page evaluates every common step prefix once per page instead
/// of once per rule. LR/HLRT members are applied individually (their
/// scan shares the page serialization, computed once per call).
#[derive(Debug)]
pub struct LearnedRuleSet {
    rules: Vec<LearnedRule>,
    batch: aw_xpath::BatchEvaluator,
    /// Rule index → slot in the batch evaluator (xpath rules only).
    batch_slot: Vec<Option<usize>>,
}

impl LearnedRuleSet {
    /// Builds the set, compiling the xpath members.
    pub fn new(rules: Vec<LearnedRule>) -> LearnedRuleSet {
        let mut xpaths: Vec<&XPath> = Vec::new();
        let mut batch_slot = Vec::with_capacity(rules.len());
        for rule in &rules {
            batch_slot.push(match rule {
                LearnedRule::XPath(xp) => {
                    xpaths.push(xp);
                    Some(xpaths.len() - 1)
                }
                _ => None,
            });
        }
        let batch = aw_xpath::BatchEvaluator::from_xpaths(xpaths);
        LearnedRuleSet {
            rules,
            batch,
            batch_slot,
        }
    }

    /// The rules, in construction order.
    pub fn rules(&self) -> &[LearnedRule] {
        &self.rules
    }

    /// Enables or disables the cross-page template cache of the xpath
    /// batch engine (enabled by default; disabling discards recorded
    /// traces). Replay is byte-identical to fresh evaluation, so the
    /// only reason to disable it is bounding memory on workloads with
    /// unbounded distinct templates.
    pub fn set_template_cache(&mut self, enabled: bool) {
        self.batch.set_cache(enabled);
    }

    /// `(replayed pages, other pages)` template-cache statistics of the
    /// xpath batch engine; `None` when the cache is disabled.
    pub fn template_cache_stats(&self) -> Option<(u64, u64)> {
        self.batch.template_cache().map(|c| c.stats())
    }

    /// Replay-path breakdown of the xpath batch engine — how pages split
    /// across verbatim replays, stitched frame replays and fresh
    /// evaluation, and how records split within frame replays; `None`
    /// when the cache is disabled.
    pub fn template_replay_stats(&self) -> Option<aw_xpath::ReplayStats> {
        self.batch.template_cache().map(|c| c.replay_stats())
    }

    /// Applies every rule to a page; results align with [`Self::rules`].
    /// Each list equals what [`LearnedRule::apply`] returns for that rule.
    pub fn apply(&self, doc: &Document) -> Vec<Vec<NodeId>> {
        let mut xpath_results = self.batch.evaluate(doc);
        // One serialization shared by every LR/HLRT member (skipped for
        // sets without any — xpath evaluates through the document index,
        // TABLE through the grid coordinates).
        let page = self
            .rules
            .iter()
            .any(|r| matches!(r, LearnedRule::Lr(_) | LearnedRule::Hlrt(_)))
            .then(|| serialize_with_spans(doc));
        self.rules
            .iter()
            .zip(&self.batch_slot)
            .map(|(rule, slot)| match (slot, rule) {
                (Some(i), _) => std::mem::take(&mut xpath_results[*i]),
                (None, LearnedRule::Table(t)) => t.apply(doc),
                (None, _) => rule.apply_serialized(page.as_ref().expect("serialized for LR/HLRT")),
            })
            .collect()
    }

    /// Extracts the matched text *values* for every rule; results align
    /// with [`Self::rules`], each list equal to
    /// [`LearnedRule::extract_values`] for that rule.
    ///
    /// This is the text-only consumer path: xpath members evaluate
    /// through [`aw_xpath::BatchEvaluator::evaluate_shared`], whose
    /// sink memoizes terminal `NodeId` materializations across template
    /// replays — the node vectors are read for their text here and never
    /// mutated, so replayed pages of one template share a single
    /// materialization per trie leaf instead of rebuilding it per page.
    pub fn extract_values(&self, doc: &Document) -> Vec<Vec<String>> {
        let xpath_results = self.batch.evaluate_shared(doc);
        let page = self
            .rules
            .iter()
            .any(|r| matches!(r, LearnedRule::Lr(_) | LearnedRule::Hlrt(_)))
            .then(|| serialize_with_spans(doc));
        let text = |ids: &[NodeId]| -> Vec<String> {
            ids.iter()
                .filter_map(|&id| doc.text(id).map(str::to_string))
                .collect()
        };
        self.rules
            .iter()
            .zip(&self.batch_slot)
            .map(|(rule, slot)| match (slot, rule) {
                (Some(i), _) => text(&xpath_results[*i]),
                (None, LearnedRule::Table(t)) => text(&t.apply(doc)),
                (None, _) => {
                    text(&rule.apply_serialized(page.as_ref().expect("serialized for LR/HLRT")))
                }
            })
            .collect()
    }

    /// Batch-replays the whole rule set over a crawl, page-parallel.
    ///
    /// Pages are independent, so they are driven through the shared
    /// work-stealing `exec` (order-preserving output): `out[p]` equals
    /// [`Self::apply`] on `docs[p]` regardless of thread count, and the
    /// call nests cleanly inside other parallel loops on the same
    /// executor. This is the production hot loop — one learned rule
    /// set, thousands of freshly crawled pages — and crawls of one site
    /// replay template traces across structurally identical pages (the
    /// xpath batch trie's [`aw_xpath::TemplateCache`]).
    pub fn apply_pages(&self, docs: &[Document], exec: &Executor) -> Vec<Vec<Vec<NodeId>>> {
        exec.map(docs, |doc| self.apply(doc))
    }
}

impl NtwOutcome {
    /// The portable rule of the top-ranked wrapper.
    pub fn best_rule(&self, site: &Site, language: WrapperLanguage) -> Option<LearnedRule> {
        self.best()
            .map(|w| LearnedRule::learn(site, language, &w.seed))
    }

    /// Portable rules for **all** ranked wrappers, ready for batched
    /// application to unseen pages (best wrapper first). The site's
    /// inductor (feature maps, posting indexes) is built once and reused
    /// across wrappers, unlike repeated [`LearnedRule::learn`] calls.
    pub fn rule_set(&self, site: &Site, language: WrapperLanguage) -> LearnedRuleSet {
        let seeds = self.ranked.iter().map(|w| &w.seed);
        let rules: Vec<LearnedRule> = match language {
            WrapperLanguage::XPath => {
                let ind = XPathInductor::new(site);
                seeds.map(|s| LearnedRule::XPath(ind.xpath(s))).collect()
            }
            WrapperLanguage::Lr => {
                let ind = LrInductor::new(site);
                seeds.map(|s| LearnedRule::Lr(ind.learn(s))).collect()
            }
            WrapperLanguage::Hlrt => {
                let ind = HlrtInductor::new(site);
                seeds.map(|s| LearnedRule::Hlrt(ind.learn(s))).collect()
            }
            WrapperLanguage::Table => {
                let ind = DomTableInductor::new(site);
                seeds.map(|s| LearnedRule::Table(ind.learn(s))).collect()
            }
        };
        LearnedRuleSet::new(rules)
    }
}

#[cfg(test)]
mod tests {
    // Exercises the deprecated `learn` facade on purpose (it must stay
    // behaviourally identical to the Engine it delegates to).
    #![allow(deprecated)]

    use super::*;
    use crate::{learn, NtwConfig};
    use aw_rank::{AnnotatorModel, ListFeatures, PublicationModel, RankingModel};

    fn training_site() -> Site {
        let page = |rows: &[(&str, &str)]| {
            let mut s = String::from("<table class='stores'>");
            for (n, a) in rows {
                s.push_str(&format!("<tr><td><b>{n}</b></td><td>{a}</td></tr>"));
            }
            s + "</table>"
        };
        Site::from_html(&[
            page(&[("ALPHA CO", "1 Elm"), ("BETA LLC", "2 Oak")]),
            page(&[("GAMMA INC", "3 Fir"), ("DELTA LTD", "4 Ash")]),
        ])
    }

    fn model() -> RankingModel {
        RankingModel::new(
            AnnotatorModel::new(0.95, 0.5),
            PublicationModel::learn(&[
                ListFeatures {
                    schema_size: 2.0,
                    alignment: 0.0,
                },
                ListFeatures {
                    schema_size: 2.0,
                    alignment: 1.0,
                },
            ]),
        )
    }

    fn labels(site: &Site) -> NodeSet {
        let mut l = NodeSet::new();
        l.extend(site.find_text("ALPHA CO"));
        l.extend(site.find_text("DELTA LTD"));
        l
    }

    #[test]
    fn xpath_rule_applies_to_unseen_page() {
        let site = training_site();
        let out = learn(
            &site,
            WrapperLanguage::XPath,
            &labels(&site),
            &model(),
            &NtwConfig::default(),
        );
        let rule = out.best_rule(&site, WrapperLanguage::XPath).unwrap();

        // A freshly "crawled" page from the same script.
        let new_page = aw_dom::parse(
            "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr>\
             <tr><td><b>SIGMA BROS</b></td><td>7 Oak</td></tr></table>",
        );
        assert_eq!(
            rule.extract_values(&new_page),
            vec!["OMEGA GROUP", "SIGMA BROS"],
            "rule: {rule}"
        );
    }

    #[test]
    fn lr_rule_applies_to_unseen_page() {
        let site = training_site();
        let out = learn(
            &site,
            WrapperLanguage::Lr,
            &labels(&site),
            &model(),
            &NtwConfig::default(),
        );
        let rule = out.best_rule(&site, WrapperLanguage::Lr).unwrap();
        let new_page = aw_dom::parse(
            "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr></table>",
        );
        assert_eq!(
            rule.extract_values(&new_page),
            vec!["OMEGA GROUP"],
            "rule: {rule}"
        );
    }

    #[test]
    fn hlrt_rule_applies_to_unseen_page() {
        let site = training_site();
        let seed = labels(&site);
        let rule = LearnedRule::learn(&site, WrapperLanguage::Hlrt, &seed);
        let new_page = aw_dom::parse(
            "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr></table>",
        );
        // HLRT's head was learned from pages whose prefix matches the new
        // page (same script), so the region resolves.
        let values = rule.extract_values(&new_page);
        assert!(
            values.contains(&"OMEGA GROUP".to_string()),
            "rule: {rule} → {values:?}"
        );
    }

    #[test]
    fn rule_consistency_with_training_extraction() {
        // Applying the portable rule back to the training pages must
        // reproduce the wrapper's own extraction.
        let site = training_site();
        let out = learn(
            &site,
            WrapperLanguage::XPath,
            &labels(&site),
            &model(),
            &NtwConfig::default(),
        );
        let best = out.best().unwrap();
        let rule = out.best_rule(&site, WrapperLanguage::XPath).unwrap();
        let mut replayed = NodeSet::new();
        for p in 0..site.page_count() as u32 {
            replayed.extend(
                rule.apply(site.page(p))
                    .into_iter()
                    .map(|id| aw_dom::PageNode::new(p, id)),
            );
        }
        assert_eq!(replayed, best.extraction);
    }

    #[test]
    fn rule_set_batches_xpaths_and_matches_individual_apply() {
        let site = training_site();
        let seed = labels(&site);
        let out = learn(
            &site,
            WrapperLanguage::XPath,
            &seed,
            &model(),
            &NtwConfig::default(),
        );
        let set = out.rule_set(&site, WrapperLanguage::XPath);
        assert_eq!(set.rules().len(), out.ranked.len());
        let new_page = aw_dom::parse(
            "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr>\
             <tr><td><b>SIGMA BROS</b></td><td>7 Oak</td></tr></table>",
        );
        let batched = set.apply(&new_page);
        assert_eq!(batched.len(), set.rules().len());
        for (rule, got) in set.rules().iter().zip(&batched) {
            assert_eq!(
                got,
                &rule.apply(&new_page),
                "batched apply differs for {rule}"
            );
        }
    }

    #[test]
    fn rule_set_mixes_languages() {
        let site = training_site();
        let seed = labels(&site);
        let set = LearnedRuleSet::new(vec![
            LearnedRule::learn(&site, WrapperLanguage::XPath, &seed),
            LearnedRule::learn(&site, WrapperLanguage::Lr, &seed),
            LearnedRule::learn(&site, WrapperLanguage::Hlrt, &seed),
        ]);
        let page = aw_dom::parse(
            "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr></table>",
        );
        let results = set.apply(&page);
        assert_eq!(results.len(), 3);
        for (rule, got) in set.rules().iter().zip(&results) {
            assert_eq!(
                got,
                &rule.apply(&page),
                "mixed-language apply differs for {rule}"
            );
        }
    }

    #[test]
    fn parallel_replay_is_identical_across_thread_counts() {
        let site = training_site();
        let seed = labels(&site);
        let set = LearnedRuleSet::new(vec![
            LearnedRule::learn(&site, WrapperLanguage::XPath, &seed),
            LearnedRule::learn(&site, WrapperLanguage::Lr, &seed),
            LearnedRule::learn(&site, WrapperLanguage::Hlrt, &seed),
        ]);
        // A small "crawl": fresh pages of the same script, plus junk.
        let crawl: Vec<aw_dom::Document> = [
            "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr></table>",
            "<table class='stores'><tr><td><b>SIGMA BROS</b></td><td>7 Oak</td></tr>\
             <tr><td><b>KAPPA SONS</b></td><td>4 Fir</td></tr></table>",
            "<p>just a paragraph</p>",
            "",
        ]
        .iter()
        .map(|html| aw_dom::parse(html))
        .collect();
        let sequential: Vec<Vec<Vec<aw_dom::NodeId>>> =
            crawl.iter().map(|doc| set.apply(doc)).collect();
        for threads in [1, 2, 4] {
            assert_eq!(
                set.apply_pages(&crawl, &Executor::new(threads)),
                sequential,
                "thread count {threads}"
            );
        }
    }

    #[test]
    fn rules_on_mismatched_pages_extract_nothing_harmful() {
        let site = training_site();
        let rule = LearnedRule::learn(&site, WrapperLanguage::XPath, &labels(&site));
        let unrelated = aw_dom::parse("<p>just a paragraph</p>");
        assert!(rule.apply(&unrelated).is_empty());
        let hlrt = LearnedRule::learn(&site, WrapperLanguage::Hlrt, &labels(&site));
        assert!(hlrt.apply(&unrelated).is_empty());
    }
}
