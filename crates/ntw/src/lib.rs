//! # aw-core — the noise-tolerant wrapper framework (NTW)
//!
//! The primary contribution of *Automatic Wrappers for Large Scale Web
//! Extraction* (Dalvi, Kumar & Soliman, VLDB 2011): make any well-behaved
//! wrapper inductor tolerant to noisy training labels by
//! **generate-and-test** —
//!
//! 1. enumerate the wrapper space of the noisy labels (`aw-enum`),
//! 2. rank each candidate by `P(L | X) · P(X)` (`aw-rank`),
//! 3. extract with the top-ranked wrapper.
//!
//! ```
//! use aw_core::{learn, naive_wrapper, NtwConfig, WrapperLanguage};
//! use aw_induct::Site;
//! use aw_rank::{AnnotatorModel, ListFeatures, PublicationModel, RankingModel};
//!
//! // A two-page "dealer locator" site.
//! let page = |a: &str, b: &str| format!(
//!     "<table><tr><td><u>{a}</u></td><td>12 Elm</td><td>OX, MS 38655</td></tr>\
//!             <tr><td><u>{b}</u></td><td>9 Oak</td><td>OX, MS 38655</td></tr></table>");
//! let site = Site::from_html(&[page("PORTER FURNITURE", "ACME BEDS"),
//!                              page("ZETA SOFAS", "DELTA DECOR")]);
//!
//! // Noisy labels: two true names (in different rows, as scattered
//! // dictionary hits are) + one street line (a false positive).
//! let mut labels = aw_induct::NodeSet::new();
//! labels.extend(site.find_text("PORTER FURNITURE"));
//! labels.extend(site.find_text("DELTA DECOR"));
//! labels.extend(site.find_text("12 Elm"));
//!
//! let model = RankingModel::new(
//!     AnnotatorModel::new(0.95, 0.4),
//!     PublicationModel::learn(&[
//!         ListFeatures { schema_size: 3.0, alignment: 0.0 },
//!         ListFeatures { schema_size: 3.0, alignment: 1.0 },
//!     ]),
//! );
//! let out = learn(&site, WrapperLanguage::XPath, &labels, &model, &NtwConfig::default());
//! let best = out.best().unwrap();
//! // The noise-tolerant wrapper extracts exactly the four names…
//! assert_eq!(best.extraction.len(), 4);
//! // …while the NAIVE baseline over-generalizes to fit the bad label.
//! let naive = naive_wrapper(&site, WrapperLanguage::XPath, &labels);
//! assert!(naive.extraction.len() > 4);
//! ```

pub mod config;
pub mod learner;
pub mod multi_type;
pub mod rule;
pub mod single_entity;

pub use config::{Enumeration, NtwConfig, WrapperLanguage};
pub use learner::{
    learn, learn_with_blackbox, learn_with_feature_based, naive_wrapper, LearnedWrapper, NtwOutcome,
};
pub use multi_type::{
    assemble_records, learn_multi_type, MultiTypeModel, MultiTypeOutcome, MultiTypeWrapper, Record,
};
pub use rule::{LearnedRule, LearnedRuleSet};
pub use single_entity::{
    learn_single_entity, learn_single_entity_with, SingleEntityOutcome, SingleEntityWrapper,
};
