//! # aw-core — the noise-tolerant wrapper framework (NTW)
//!
//! > **Naming:** this crate lives in the `crates/ntw` directory (the
//! > paper's shorthand for the noise-tolerant wrapper framework) but is
//! > the package `aw-core` / library `aw_core` — there is no `aw_ntw`.
//! > See `crates/ntw/README.md`.
//!
//! The primary contribution of *Automatic Wrappers for Large Scale Web
//! Extraction* (Dalvi, Kumar & Soliman, VLDB 2011): make any well-behaved
//! wrapper inductor tolerant to noisy training labels by
//! **generate-and-test**. The public surface is one [`Engine`], built
//! once via [`EngineBuilder`] and exposing the pipeline as typed stages:
//!
//! 1. `engine.annotate(&site)` — noisy labels from a cheap annotator,
//! 2. `engine.enumerate(&site, &labels)` — the wrapper space `W(L)`
//!    (`aw-enum`, §4) as a [`WrapperSpace`],
//! 3. `engine.rank(space)` — every candidate scored by
//!    `P(L | X) · P(X)` (`aw-rank`, §6) into [`RankedWrappers`],
//! 4. `ranked.best()?.compile()` — a portable [`CompiledWrapper`]
//!    artifact that serializes (`to_json`/`from_json`) and extracts from
//!    freshly crawled pages.
//!
//! The serving side bundles many sites' artifacts into a
//! [`WrapperBundle`] (format `aw-bundle`), holds them resident in a
//! hot-swappable [`WrapperRegistry`], and answers concurrent requests
//! through an [`ExtractionService`] (see the [`service`] module docs and
//! the `aw-serve` crate's HTTP front end).
//!
//! ```
//! use aw_core::{AwError, Engine, NtwConfig, WrapperLanguage};
//! use aw_induct::Site;
//! use aw_rank::{AnnotatorModel, ListFeatures, PublicationModel, RankingModel};
//!
//! // A two-page "dealer locator" site.
//! let page = |a: &str, b: &str| format!(
//!     "<table><tr><td><u>{a}</u></td><td>12 Elm</td><td>OX, MS 38655</td></tr>\
//!             <tr><td><u>{b}</u></td><td>9 Oak</td><td>OX, MS 38655</td></tr></table>");
//! let site = Site::from_html(&[page("PORTER FURNITURE", "ACME BEDS"),
//!                              page("ZETA SOFAS", "DELTA DECOR")]);
//!
//! // Noisy labels: two true names (in different rows, as scattered
//! // dictionary hits are) + one street line (a false positive).
//! let mut labels = aw_induct::NodeSet::new();
//! labels.extend(site.find_text("PORTER FURNITURE"));
//! labels.extend(site.find_text("DELTA DECOR"));
//! labels.extend(site.find_text("12 Elm"));
//!
//! let model = RankingModel::new(
//!     AnnotatorModel::new(0.95, 0.4),
//!     PublicationModel::learn(&[
//!         ListFeatures { schema_size: 3.0, alignment: 0.0 },
//!         ListFeatures { schema_size: 3.0, alignment: 1.0 },
//!     ]),
//! );
//!
//! // One engine, built once, drives the whole pipeline.
//! let engine = Engine::builder(model)
//!     .language(WrapperLanguage::XPath)
//!     .config(NtwConfig::default())
//!     .build();
//! let ranked = engine.learn(&site, &labels)?;
//! let best = ranked.best().expect("nonempty space");
//! // The noise-tolerant wrapper extracts exactly the four names…
//! assert_eq!(best.extraction.len(), 4);
//! // …while the NAIVE baseline over-generalizes to fit the bad label.
//! assert!(engine.naive(&site, &labels)?.extraction.len() > 4);
//!
//! // The winner compiles into a portable serving artifact.
//! let wrapper = best.compile();
//! let shipped = aw_core::CompiledWrapper::from_json(&wrapper.to_json())?;
//! let fresh = aw_dom::parse(
//!     "<table><tr><td><u>OMEGA HOME</u></td><td>1 Fir</td><td>OX, MS 38655</td></tr></table>");
//! assert_eq!(shipped.extract_values(&fresh), ["OMEGA HOME"]);
//! # Ok::<(), AwError>(())
//! ```
//!
//! The pre-Engine free functions ([`learn`], [`naive_wrapper`]) survive
//! as deprecated facades; the generic [`learn_with_feature_based`] /
//! [`learn_with_blackbox`] remain for custom inductors.

pub mod artifact;
pub mod config;
pub mod engine;
pub mod error;
pub mod health;
pub mod latency;
pub mod learner;
pub mod multi_type;
pub mod relearn;
pub mod rule;
pub mod service;
pub mod single_entity;
pub mod store;

pub use artifact::{
    CompiledWrapper, WrapperBundle, ARTIFACT_FORMAT, ARTIFACT_VERSION, BUNDLE_FORMAT,
    BUNDLE_VERSION, V1_SITE_KEY,
};
pub use config::{Enumeration, NtwConfig, WrapperLanguage};
pub use engine::{Annotator, Engine, EngineBuilder, RankedWrapper, RankedWrappers, WrapperSpace};
pub use error::AwError;
pub use health::{HealthEvent, HealthThresholds, HealthTracker, PageObservation, SiteHealth};
pub use latency::{LatencyHistogram, LatencySnapshot};
#[allow(deprecated)]
pub use learner::{learn, naive_wrapper};
pub use learner::{learn_with_blackbox, learn_with_feature_based, LearnedWrapper, NtwOutcome};
pub use multi_type::{
    assemble_records, learn_multi_type, MultiTypeModel, MultiTypeOutcome, MultiTypeWrapper, Record,
};
pub use relearn::{RelearnConfig, RelearnController, RelearnOutcome};
pub use rule::{LearnedRule, LearnedRuleSet};
pub use service::{
    ExtractRequest, ExtractResponse, ExtractionService, ParseStats, ResidencyStats, WrapperRegistry,
};
pub use single_entity::{
    learn_single_entity, learn_single_entity_with, SingleEntityOutcome, SingleEntityWrapper,
};
pub use store::{
    ArtifactReader, BundleBinaryWriter, BundleStore, LoadedArtifact, BUNDLE_BIN_FORMAT,
    BUNDLE_BIN_MAGIC, BUNDLE_BIN_VERSION,
};
