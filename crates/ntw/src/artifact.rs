//! Portable, serializable wrapper artifacts.
//!
//! The paper's deployment learns a wrapper once and extracts from pages
//! crawled later ("our system is used in production in Yahoo!"). Before
//! this module a learned wrapper could not leave the process that
//! learned it; a [`CompiledWrapper`] is the serving artifact that can:
//!
//! * **learn offline** — [`crate::RankedWrapper::compile`] packages the
//!   top-ranked wrapper's portable rule;
//! * **ship** — [`CompiledWrapper::to_json`] / [`CompiledWrapper::from_json`]
//!   carry a versioned JSON payload for all four rule languages
//!   (TABLE/LR/HLRT/XPATH);
//! * **serve** — [`CompiledWrapper::extract`] /
//!   [`CompiledWrapper::extract_pages`] amortize the compiled xpath
//!   trie, its cross-page template cache and the shared executor across
//!   requests.
//!
//! The payload is deliberately small and self-describing (the offline
//! serde_json stand-in renders whole numbers with a decimal point, so
//! `version` reads `1.0` on the wire; readers accept any integral form):
//!
//! ```json
//! {
//!   "format": "aw-wrapper",
//!   "version": 1.0,
//!   "language": "XPATH",
//!   "rule": { "xpath": "/html/body/table/tr/td/b/text()" }
//! }
//! ```

use crate::config::WrapperLanguage;
use crate::error::AwError;
use crate::rule::{LearnedRule, LearnedRuleSet};
use aw_dom::{Document, NodeId};
use aw_induct::{HlrtRule, LrRule, TableRule};
use aw_pool::Executor;
use serde::Value;

/// The `format` marker every wrapper artifact carries.
pub const ARTIFACT_FORMAT: &str = "aw-wrapper";

/// The artifact schema version this build reads and writes.
pub const ARTIFACT_VERSION: u32 = 1;

/// A learned wrapper compiled for serving: the portable rule plus its
/// pre-built execution state (xpath batch trie with its template cache,
/// shared executor).
#[derive(Debug)]
pub struct CompiledWrapper {
    /// One-rule set: owns the rule and reuses the batched replay
    /// machinery (compiled trie for xpath, shared page serialization for
    /// LR/HLRT).
    set: LearnedRuleSet,
    executor: Executor,
}

impl CompiledWrapper {
    /// Compiles a portable rule into a serving wrapper driving parallel
    /// extraction through [`Executor::global`].
    pub fn from_rule(rule: LearnedRule) -> CompiledWrapper {
        CompiledWrapper {
            set: LearnedRuleSet::new(vec![rule]),
            executor: Executor::global().clone(),
        }
    }

    /// Replaces the executor driving [`CompiledWrapper::extract_pages`].
    pub fn with_executor(mut self, executor: Executor) -> CompiledWrapper {
        self.executor = executor;
        self
    }

    /// The wrapper language of the compiled rule.
    pub fn language(&self) -> WrapperLanguage {
        self.rule().language()
    }

    /// The portable rule.
    pub fn rule(&self) -> &LearnedRule {
        &self.set.rules()[0]
    }

    /// Extracts from one page, returning matched text nodes in document
    /// order (identical to [`LearnedRule::apply`]).
    pub fn extract(&self, doc: &Document) -> Vec<NodeId> {
        self.set.apply(doc).pop().unwrap_or_default()
    }

    /// Extracts the matched text *values* from one page.
    pub fn extract_values(&self, doc: &Document) -> Vec<String> {
        self.extract(doc)
            .into_iter()
            .filter_map(|id| doc.text(id).map(str::to_string))
            .collect()
    }

    /// Extracts from a whole crawl, page-parallel through the wrapper's
    /// executor; `out[p]` equals [`CompiledWrapper::extract`] on
    /// `docs[p]` for every thread count.
    pub fn extract_pages(&self, docs: &[Document]) -> Vec<Vec<NodeId>> {
        self.set
            .apply_pages(docs, &self.executor)
            .into_iter()
            .map(|mut per_rule| per_rule.pop().unwrap_or_default())
            .collect()
    }

    /// Serializes the wrapper to its versioned JSON artifact.
    pub fn to_json(&self) -> String {
        let rule = match self.rule() {
            LearnedRule::XPath(xp) => obj(vec![("xpath", Value::String(xp.to_string()))]),
            LearnedRule::Lr(r) => obj(vec![
                ("left", Value::String(r.left.clone())),
                ("right", Value::String(r.right.clone())),
            ]),
            LearnedRule::Hlrt(r) => obj(vec![
                ("head", Value::String(r.head.clone())),
                ("tail", Value::String(r.tail.clone())),
                ("left", Value::String(r.lr.left.clone())),
                ("right", Value::String(r.lr.right.clone())),
            ]),
            LearnedRule::Table(r) => table_to_value(r),
        };
        let artifact = obj(vec![
            ("format", Value::String(ARTIFACT_FORMAT.into())),
            ("version", Value::Number(ARTIFACT_VERSION as f64)),
            ("language", Value::String(self.language().name().into())),
            ("rule", rule),
        ]);
        serde_json::to_string_pretty(&artifact).expect("artifact serialization is infallible")
    }

    /// Deserializes a wrapper artifact produced by
    /// [`CompiledWrapper::to_json`] — in this process or any other.
    ///
    /// Rejects payloads that are not valid JSON, lack the
    /// `aw-wrapper` format marker or required fields
    /// ([`AwError::MalformedArtifact`]), carry an incompatible version
    /// ([`AwError::UnsupportedVersion`]), or name an unknown language
    /// ([`AwError::UnknownLanguage`]).
    pub fn from_json(payload: &str) -> Result<CompiledWrapper, AwError> {
        let v = serde_json::from_str(payload).map_err(|e| malformed(e.to_string()))?;
        match v.get("format").and_then(Value::as_str) {
            Some(ARTIFACT_FORMAT) => {}
            Some(other) => return Err(malformed(format!("unknown format marker {other:?}"))),
            None => return Err(malformed("missing \"format\" marker")),
        }
        let version = u32_field(&v, "version")?;
        if version != ARTIFACT_VERSION {
            return Err(AwError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_VERSION,
            });
        }
        let language: WrapperLanguage = v
            .get("language")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed("missing \"language\""))?
            .parse()?;
        let rule_v = v.get("rule").ok_or_else(|| malformed("missing \"rule\""))?;
        let rule = match language {
            WrapperLanguage::XPath => {
                let xp = str_field(rule_v, "xpath")?;
                LearnedRule::XPath(
                    aw_xpath::parse_xpath(xp).map_err(|e| AwError::InvalidRule(e.to_string()))?,
                )
            }
            WrapperLanguage::Lr => LearnedRule::Lr(LrRule {
                left: str_field(rule_v, "left")?.to_string(),
                right: str_field(rule_v, "right")?.to_string(),
            }),
            WrapperLanguage::Hlrt => LearnedRule::Hlrt(HlrtRule {
                head: str_field(rule_v, "head")?.to_string(),
                tail: str_field(rule_v, "tail")?.to_string(),
                lr: LrRule {
                    left: str_field(rule_v, "left")?.to_string(),
                    right: str_field(rule_v, "right")?.to_string(),
                },
            }),
            WrapperLanguage::Table => LearnedRule::Table(table_from_value(rule_v)?),
        };
        Ok(CompiledWrapper::from_rule(rule))
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn malformed(msg: impl Into<String>) -> AwError {
    AwError::MalformedArtifact(msg.into())
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, AwError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| malformed(format!("missing string field \"{key}\"")))
}

/// Reads a numeric field that must hold an integral `u32` (the stand-in
/// JSON parser stores all numbers as `f64`).
fn u32_field(v: &Value, key: &str) -> Result<u32, AwError> {
    let n = v
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| malformed(format!("missing numeric field \"{key}\"")))?;
    if n.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&n) {
        return Err(malformed(format!(
            "field \"{key}\" is not a non-negative integer"
        )));
    }
    Ok(n as u32)
}

fn table_to_value(rule: &TableRule) -> Value {
    match *rule {
        TableRule::Empty => obj(vec![("scope", Value::String("empty".into()))]),
        TableRule::Cell { row, col } => obj(vec![
            ("scope", Value::String("cell".into())),
            ("row", Value::Number(row as f64)),
            ("col", Value::Number(col as f64)),
        ]),
        TableRule::Row(row) => obj(vec![
            ("scope", Value::String("row".into())),
            ("row", Value::Number(row as f64)),
        ]),
        TableRule::Col(col) => obj(vec![
            ("scope", Value::String("col".into())),
            ("col", Value::Number(col as f64)),
        ]),
        TableRule::Table => obj(vec![("scope", Value::String("table".into()))]),
    }
}

fn table_from_value(v: &Value) -> Result<TableRule, AwError> {
    match str_field(v, "scope")? {
        "empty" => Ok(TableRule::Empty),
        "cell" => Ok(TableRule::Cell {
            row: u32_field(v, "row")?,
            col: u32_field(v, "col")?,
        }),
        "row" => Ok(TableRule::Row(u32_field(v, "row")?)),
        "col" => Ok(TableRule::Col(u32_field(v, "col")?)),
        "table" => Ok(TableRule::Table),
        other => Err(malformed(format!("unknown table scope {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_induct::{NodeSet, Site};

    fn training_site() -> Site {
        let page = |rows: &[(&str, &str)]| {
            let mut s = String::from("<table class='stores'>");
            for (n, a) in rows {
                s.push_str(&format!("<tr><td><b>{n}</b></td><td>{a}</td></tr>"));
            }
            s + "</table>"
        };
        Site::from_html(&[
            page(&[("ALPHA CO", "1 Elm"), ("BETA LLC", "2 Oak")]),
            page(&[("GAMMA INC", "3 Fir"), ("DELTA LTD", "4 Ash")]),
        ])
    }

    fn seed(site: &Site) -> NodeSet {
        let mut l = NodeSet::new();
        l.extend(site.find_text("ALPHA CO"));
        l.extend(site.find_text("DELTA LTD"));
        l
    }

    fn fresh_page() -> Document {
        aw_dom::parse(
            "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr>\
             <tr><td><b>SIGMA BROS</b></td><td>7 Oak</td></tr></table>",
        )
    }

    #[test]
    fn round_trip_is_byte_identical_for_every_language() {
        let site = training_site();
        let labels = seed(&site);
        let crawl = [fresh_page(), aw_dom::parse("<p>unrelated</p>")];
        for language in WrapperLanguage::ALL {
            let rule = LearnedRule::learn(&site, language, &labels);
            let wrapper = CompiledWrapper::from_rule(rule.clone());
            let restored = CompiledWrapper::from_json(&wrapper.to_json()).unwrap();
            assert_eq!(restored.rule(), &rule, "{language}");
            assert_eq!(restored.language(), language);
            for doc in &crawl {
                assert_eq!(
                    restored.extract(doc),
                    wrapper.extract(doc),
                    "{language} extraction differs after round trip"
                );
                assert_eq!(restored.extract(doc), rule.apply(doc), "{language}");
            }
            // And the serialized form itself is stable.
            assert_eq!(restored.to_json(), wrapper.to_json(), "{language}");
        }
    }

    #[test]
    fn extract_pages_matches_extract_for_all_thread_counts() {
        let site = training_site();
        let rule = LearnedRule::learn(&site, WrapperLanguage::XPath, &seed(&site));
        let crawl: Vec<Document> = vec![
            fresh_page(),
            aw_dom::parse("<p>nothing here</p>"),
            fresh_page(),
        ];
        let sequential: Vec<Vec<NodeId>> = {
            let w = CompiledWrapper::from_rule(rule.clone());
            crawl.iter().map(|d| w.extract(d)).collect()
        };
        for threads in [1, 2, 4] {
            let w = CompiledWrapper::from_rule(rule.clone()).with_executor(Executor::new(threads));
            assert_eq!(w.extract_pages(&crawl), sequential, "threads {threads}");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let site = training_site();
        let wrapper = CompiledWrapper::from_rule(LearnedRule::learn(
            &site,
            WrapperLanguage::XPath,
            &seed(&site),
        ));
        let payload = wrapper
            .to_json()
            .replace("\"version\": 1.0", "\"version\": 2.0");
        assert_eq!(
            CompiledWrapper::from_json(&payload).unwrap_err(),
            AwError::UnsupportedVersion {
                found: 2,
                supported: ARTIFACT_VERSION
            }
        );
        let fractional = wrapper
            .to_json()
            .replace("\"version\": 1.0", "\"version\": 1.5");
        assert!(matches!(
            CompiledWrapper::from_json(&fractional).unwrap_err(),
            AwError::MalformedArtifact(_)
        ));
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        for payload in [
            "",
            "not json",
            "{}",
            r#"{"format":"aw-wrapper"}"#,
            r#"{"format":"other","version":1,"language":"XPATH","rule":{"xpath":"//a"}}"#,
            r#"{"format":"aw-wrapper","version":1,"language":"XPATH"}"#,
            r#"{"format":"aw-wrapper","version":1,"language":"XPATH","rule":{}}"#,
            r#"{"format":"aw-wrapper","version":1,"language":"LR","rule":{"left":"<b>"}}"#,
            r#"{"format":"aw-wrapper","version":1,"language":"TABLE","rule":{"scope":"cell","row":1.5,"col":2}}"#,
            r#"{"format":"aw-wrapper","version":1,"language":"TABLE","rule":{"scope":"diagonal"}}"#,
        ] {
            assert!(
                matches!(
                    CompiledWrapper::from_json(payload),
                    Err(AwError::MalformedArtifact(_))
                ),
                "accepted: {payload}"
            );
        }
        assert_eq!(
            CompiledWrapper::from_json(
                r#"{"format":"aw-wrapper","version":1,"language":"CSV","rule":{}}"#
            )
            .unwrap_err(),
            AwError::UnknownLanguage("CSV".into())
        );
        assert!(matches!(
            CompiledWrapper::from_json(
                r#"{"format":"aw-wrapper","version":1,"language":"XPATH","rule":{"xpath":"///"}}"#
            )
            .unwrap_err(),
            AwError::InvalidRule(_)
        ));
    }

    #[test]
    fn artifact_declares_format_version_and_language() {
        let site = training_site();
        let wrapper = CompiledWrapper::from_rule(LearnedRule::learn(
            &site,
            WrapperLanguage::Hlrt,
            &seed(&site),
        ));
        let json = wrapper.to_json();
        assert!(json.contains("\"format\": \"aw-wrapper\""), "{json}");
        assert!(json.contains("\"version\": 1.0"), "{json}");
        assert!(json.contains("\"language\": \"HLRT\""), "{json}");
    }
}
