//! Portable, serializable wrapper artifacts.
//!
//! The paper's deployment learns a wrapper once and extracts from pages
//! crawled later ("our system is used in production in Yahoo!"). Before
//! this module a learned wrapper could not leave the process that
//! learned it; a [`CompiledWrapper`] is the serving artifact that can:
//!
//! * **learn offline** — [`crate::RankedWrapper::compile`] packages the
//!   top-ranked wrapper's portable rule;
//! * **ship** — [`CompiledWrapper::to_json`] / [`CompiledWrapper::from_json`]
//!   carry a versioned JSON payload for all four rule languages
//!   (TABLE/LR/HLRT/XPATH);
//! * **serve** — [`CompiledWrapper::extract`] /
//!   [`CompiledWrapper::extract_pages`] amortize the compiled xpath
//!   trie, its cross-page template cache and the shared executor across
//!   requests.
//!
//! The payload is deliberately small and self-describing (the offline
//! serde_json stand-in renders whole numbers with a decimal point, so
//! `version` reads `1.0` on the wire; readers accept any integral form):
//!
//! ```json
//! {
//!   "format": "aw-wrapper",
//!   "version": 1.0,
//!   "language": "XPATH",
//!   "rule": { "xpath": "/html/body/table/tr/td/b/text()" }
//! }
//! ```
//!
//! ## Bundles (artifact generation 2)
//!
//! A serving fleet holds wrappers for *many* sites at once, so the v2
//! artifact is a [`WrapperBundle`]: one payload mapping site keys to
//! wrappers (any mix of the four languages), which
//! [`crate::WrapperRegistry`] loads and hot-swaps atomically:
//!
//! ```json
//! {
//!   "format": "aw-bundle",
//!   "version": 2.0,
//!   "wrappers": {
//!     "dealer-a": { "language": "XPATH", "rule": { "xpath": "//u/text()" } },
//!     "dealer-b": { "language": "LR", "rule": { "left": "<b>", "right": "</b>" } }
//!   }
//! }
//! ```
//!
//! [`WrapperBundle::from_json`] is the v2 reader and remains fully
//! backward compatible: every v1 single-wrapper artifact is accepted
//! byte-for-byte (it loads as a one-entry bundle under
//! [`V1_SITE_KEY`]). Malformed bundle members fail with the offending
//! site key in the error, not a bare variant.
//!
//! ## Binary bundles (artifact generation 3)
//!
//! At web scale (10⁵–10⁶ sites) one monolithic JSON payload is the
//! wrong shape: the v3 binary bundle (`aw-bundle-bin`, defined in the
//! [`crate::store`] module) keeps each site's wrapper as an
//! independently seekable segment — each segment the exact bytes of
//! that wrapper's v1 [`CompiledWrapper::to_json`] payload — behind a
//! sorted offset index, so a [`crate::BundleStore`] loads one site
//! without parsing the rest. [`WrapperBundle::to_binary`] /
//! [`WrapperBundle::from_binary`] convert losslessly between the
//! generations, and [`crate::ArtifactReader`] sniffs all three at I/O
//! boundaries.

use crate::config::WrapperLanguage;
use crate::error::AwError;
use crate::rule::{LearnedRule, LearnedRuleSet};
use aw_dom::{Document, NodeId};
use aw_induct::{HlrtRule, LrRule, TableRule};
use aw_pool::Executor;
use serde::Value;
use std::collections::BTreeMap;

/// The `format` marker every single-wrapper artifact carries.
pub const ARTIFACT_FORMAT: &str = "aw-wrapper";

/// The single-wrapper artifact schema version this build reads and
/// writes.
pub const ARTIFACT_VERSION: u32 = 1;

/// The `format` marker every wrapper bundle carries.
pub const BUNDLE_FORMAT: &str = "aw-bundle";

/// The bundle schema version this build reads and writes (generation 2
/// of the artifact family; generation 1 is the single-wrapper
/// [`ARTIFACT_FORMAT`] payload, which the bundle reader still accepts).
pub const BUNDLE_VERSION: u32 = 2;

/// The site key a v1 single-wrapper artifact loads under when read
/// through the v2 bundle reader ([`WrapperBundle::from_json`]).
pub const V1_SITE_KEY: &str = "default";

/// A learned wrapper compiled for serving: the portable rule plus its
/// pre-built execution state (xpath batch trie with its template cache,
/// shared executor).
#[derive(Debug)]
pub struct CompiledWrapper {
    /// One-rule set: owns the rule and reuses the batched replay
    /// machinery (compiled trie for xpath, shared page serialization for
    /// LR/HLRT).
    set: LearnedRuleSet,
    executor: Executor,
}

impl CompiledWrapper {
    /// Compiles a portable rule into a serving wrapper driving parallel
    /// extraction through [`Executor::global`].
    pub fn from_rule(rule: LearnedRule) -> CompiledWrapper {
        CompiledWrapper {
            set: LearnedRuleSet::new(vec![rule]),
            executor: Executor::global().clone(),
        }
    }

    /// Replaces the executor driving [`CompiledWrapper::extract_pages`].
    pub fn with_executor(mut self, executor: Executor) -> CompiledWrapper {
        self.executor = executor;
        self
    }

    /// The wrapper language of the compiled rule.
    pub fn language(&self) -> WrapperLanguage {
        self.rule().language()
    }

    /// The portable rule.
    pub fn rule(&self) -> &LearnedRule {
        &self.set.rules()[0]
    }

    /// Extracts from one page, returning matched text nodes in document
    /// order (identical to [`LearnedRule::apply`]).
    pub fn extract(&self, doc: &Document) -> Vec<NodeId> {
        self.set.apply(doc).pop().unwrap_or_default()
    }

    /// Extracts the matched text *values* from one page.
    ///
    /// Values are consumed as text only, so this takes the rule set's
    /// shared-result path: template replays of rank-monotone pages reuse
    /// one materialized node vector per trie leaf instead of rebuilding
    /// it per page (see [`LearnedRuleSet::extract_values`]).
    pub fn extract_values(&self, doc: &Document) -> Vec<String> {
        self.set.extract_values(doc).pop().unwrap_or_default()
    }

    /// Extracts from a whole crawl, page-parallel through the wrapper's
    /// executor; `out[p]` equals [`CompiledWrapper::extract`] on
    /// `docs[p]` for every thread count.
    pub fn extract_pages(&self, docs: &[Document]) -> Vec<Vec<NodeId>> {
        self.extract_pages_with(docs, &self.executor)
    }

    /// Like [`CompiledWrapper::extract_pages`], but driven through an
    /// explicit executor — what [`crate::ExtractionService`] uses to
    /// route every request's pages onto its own pool while sharing this
    /// wrapper's compiled trie and template cache.
    pub fn extract_pages_with(&self, docs: &[Document], exec: &Executor) -> Vec<Vec<NodeId>> {
        self.set
            .apply_pages(docs, exec)
            .into_iter()
            .map(|mut per_rule| per_rule.pop().unwrap_or_default())
            .collect()
    }

    /// Enables or disables the cross-page template cache of the
    /// wrapper's xpath engine (enabled by default). Replay is
    /// byte-identical to fresh evaluation; disabling only bounds memory
    /// on workloads with unbounded distinct templates.
    pub fn with_template_cache(mut self, enabled: bool) -> CompiledWrapper {
        self.set.set_template_cache(enabled);
        self
    }

    /// `(replayed pages, other pages)` statistics of the wrapper's
    /// cross-page template cache; `None` when the cache is disabled (or
    /// the rule has no xpath engine to cache for).
    pub fn template_cache_stats(&self) -> Option<(u64, u64)> {
        self.set.template_cache_stats()
    }

    /// Replay-path breakdown of the wrapper's template cache — verbatim
    /// whole-page replays, stitched frame (partial) replays, and how
    /// records split between donor stitching and per-span fallback
    /// within the latter; `None` when the cache is disabled.
    pub fn template_replay_stats(&self) -> Option<aw_xpath::ReplayStats> {
        self.set.template_replay_stats()
    }

    /// Serializes the wrapper to its versioned JSON artifact.
    pub fn to_json(&self) -> String {
        let artifact = obj(vec![
            ("format", Value::String(ARTIFACT_FORMAT.into())),
            ("version", Value::Number(ARTIFACT_VERSION as f64)),
            ("language", Value::String(self.language().name().into())),
            ("rule", rule_to_value(self.rule())),
        ]);
        serde_json::to_string_pretty(&artifact).expect("artifact serialization is infallible")
    }

    /// Deserializes a wrapper artifact produced by
    /// [`CompiledWrapper::to_json`] — in this process or any other.
    ///
    /// Rejects payloads that are not valid JSON, lack the
    /// `aw-wrapper` format marker or required fields
    /// ([`AwError::MalformedArtifact`]), carry an incompatible version
    /// ([`AwError::UnsupportedVersion`]), or name an unknown language
    /// ([`AwError::UnknownLanguage`]).
    pub fn from_json(payload: &str) -> Result<CompiledWrapper, AwError> {
        let v = serde_json::from_str(payload).map_err(|e| malformed(e.to_string()))?;
        match v.get("format").and_then(Value::as_str) {
            Some(ARTIFACT_FORMAT) => {}
            Some(other) => return Err(malformed(format!("unknown format marker {other:?}"))),
            None => return Err(malformed("missing \"format\" marker")),
        }
        let version = u32_field(&v, "version")?;
        if version != ARTIFACT_VERSION {
            return Err(AwError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_VERSION,
            });
        }
        Ok(CompiledWrapper::from_rule(member_rule_from_value(&v)?))
    }
}

/// Renders a portable rule as the language-specific `"rule"` object
/// shared by v1 artifacts and v2 bundle members.
fn rule_to_value(rule: &LearnedRule) -> Value {
    match rule {
        LearnedRule::XPath(xp) => obj(vec![("xpath", Value::String(xp.to_string()))]),
        LearnedRule::Lr(r) => obj(vec![
            ("left", Value::String(r.left.clone())),
            ("right", Value::String(r.right.clone())),
        ]),
        LearnedRule::Hlrt(r) => obj(vec![
            ("head", Value::String(r.head.clone())),
            ("tail", Value::String(r.tail.clone())),
            ("left", Value::String(r.lr.left.clone())),
            ("right", Value::String(r.lr.right.clone())),
        ]),
        LearnedRule::Table(r) => table_to_value(r),
    }
}

/// Reads the `language` + `rule` fields of a v1 artifact or v2 bundle
/// member back into a portable rule.
fn member_rule_from_value(v: &Value) -> Result<LearnedRule, AwError> {
    let language: WrapperLanguage = v
        .get("language")
        .and_then(Value::as_str)
        .ok_or_else(|| malformed("missing \"language\""))?
        .parse()?;
    let rule_v = v.get("rule").ok_or_else(|| malformed("missing \"rule\""))?;
    Ok(match language {
        WrapperLanguage::XPath => {
            let xp = str_field(rule_v, "xpath")?;
            LearnedRule::XPath(
                aw_xpath::parse_xpath(xp).map_err(|e| AwError::InvalidRule(e.to_string()))?,
            )
        }
        WrapperLanguage::Lr => LearnedRule::Lr(LrRule {
            left: str_field(rule_v, "left")?.to_string(),
            right: str_field(rule_v, "right")?.to_string(),
        }),
        WrapperLanguage::Hlrt => LearnedRule::Hlrt(HlrtRule {
            head: str_field(rule_v, "head")?.to_string(),
            tail: str_field(rule_v, "tail")?.to_string(),
            lr: LrRule {
                left: str_field(rule_v, "left")?.to_string(),
                right: str_field(rule_v, "right")?.to_string(),
            },
        }),
        WrapperLanguage::Table => LearnedRule::Table(table_from_value(rule_v)?),
    })
}

/// A versioned multi-site artifact: site keys mapped to serving
/// wrappers, any mix of the four rule languages.
///
/// This is the unit a [`crate::WrapperRegistry`] loads and hot-swaps:
/// `awrap learn --bundle` emits one from [`crate::Engine::learn_sites`],
/// `awrap serve` / `POST /wrappers` consume it. Keys are held sorted, so
/// [`WrapperBundle::to_json`] is deterministic regardless of insertion
/// order.
#[derive(Debug, Default)]
pub struct WrapperBundle {
    wrappers: BTreeMap<String, CompiledWrapper>,
}

impl WrapperBundle {
    /// An empty bundle.
    pub fn new() -> WrapperBundle {
        WrapperBundle::default()
    }

    /// Adds (or replaces) the wrapper serving `site`, returning any
    /// previous wrapper under that key.
    pub fn insert(
        &mut self,
        site: impl Into<String>,
        wrapper: CompiledWrapper,
    ) -> Option<CompiledWrapper> {
        self.wrappers.insert(site.into(), wrapper)
    }

    /// The wrapper serving `site`, if bundled.
    pub fn get(&self, site: &str) -> Option<&CompiledWrapper> {
        self.wrappers.get(site)
    }

    /// Removes and returns the wrapper serving `site`.
    pub fn remove(&mut self, site: &str) -> Option<CompiledWrapper> {
        self.wrappers.remove(site)
    }

    /// Number of bundled site wrappers.
    pub fn len(&self) -> usize {
        self.wrappers.len()
    }

    /// True when no wrapper is bundled.
    pub fn is_empty(&self) -> bool {
        self.wrappers.is_empty()
    }

    /// The bundled site keys, ascending.
    pub fn site_keys(&self) -> impl Iterator<Item = &str> {
        self.wrappers.keys().map(String::as_str)
    }

    /// Iterates `(site key, wrapper)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CompiledWrapper)> {
        self.wrappers.iter().map(|(k, w)| (k.as_str(), w))
    }

    /// Serializes the bundle to its versioned JSON payload (format
    /// [`BUNDLE_FORMAT`], version [`BUNDLE_VERSION`]; see the [module
    /// docs](self) for the wire shape).
    pub fn to_json(&self) -> String {
        let wrappers = Value::Object(
            self.wrappers
                .iter()
                .map(|(key, w)| {
                    (
                        key.clone(),
                        obj(vec![
                            ("language", Value::String(w.language().name().into())),
                            ("rule", rule_to_value(w.rule())),
                        ]),
                    )
                })
                .collect(),
        );
        let bundle = obj(vec![
            ("format", Value::String(BUNDLE_FORMAT.into())),
            ("version", Value::Number(BUNDLE_VERSION as f64)),
            ("wrappers", wrappers),
        ]);
        serde_json::to_string_pretty(&bundle).expect("bundle serialization is infallible")
    }

    /// The generation-2 artifact reader: deserializes a bundle produced
    /// by [`WrapperBundle::to_json`] — **or** any v1 single-wrapper
    /// artifact ([`CompiledWrapper::to_json`]), which loads byte-for-byte
    /// as a one-entry bundle under [`V1_SITE_KEY`].
    ///
    /// Errors mirror [`CompiledWrapper::from_json`]; a malformed bundle
    /// *member* additionally reports the site key it was stored under
    /// (e.g. `bundle member "dealer-3": missing string field "xpath"`).
    pub fn from_json(payload: &str) -> Result<WrapperBundle, AwError> {
        let v = serde_json::from_str(payload).map_err(|e| malformed(e.to_string()))?;
        match v.get("format").and_then(Value::as_str) {
            Some(BUNDLE_FORMAT) => {}
            // Backward compatibility: a v1 single-wrapper artifact is a
            // one-entry bundle.
            Some(ARTIFACT_FORMAT) => {
                let mut bundle = WrapperBundle::new();
                bundle.insert(V1_SITE_KEY, CompiledWrapper::from_json(payload)?);
                return Ok(bundle);
            }
            Some(other) => return Err(malformed(format!("unknown format marker {other:?}"))),
            None => return Err(malformed("missing \"format\" marker")),
        }
        let version = u32_field(&v, "version")?;
        if version != BUNDLE_VERSION {
            return Err(AwError::UnsupportedVersion {
                found: version,
                supported: BUNDLE_VERSION,
            });
        }
        let Some(members) = v.get("wrappers") else {
            return Err(malformed("missing \"wrappers\" object"));
        };
        let Value::Object(entries) = members else {
            return Err(malformed("\"wrappers\" is not an object"));
        };
        let mut bundle = WrapperBundle::new();
        for (key, member) in entries {
            let rule = member_rule_from_value(member).map_err(|e| e.in_bundle_member(key))?;
            bundle.insert(key.clone(), CompiledWrapper::from_rule(rule));
        }
        Ok(bundle)
    }
}

impl IntoIterator for WrapperBundle {
    type Item = (String, CompiledWrapper);
    type IntoIter = std::collections::btree_map::IntoIter<String, CompiledWrapper>;

    fn into_iter(self) -> Self::IntoIter {
        self.wrappers.into_iter()
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn malformed(msg: impl Into<String>) -> AwError {
    AwError::MalformedArtifact(msg.into())
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, AwError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| malformed(format!("missing string field \"{key}\"")))
}

/// Reads a numeric field that must hold an integral `u32` (the stand-in
/// JSON parser stores all numbers as `f64`).
fn u32_field(v: &Value, key: &str) -> Result<u32, AwError> {
    let n = v
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| malformed(format!("missing numeric field \"{key}\"")))?;
    if n.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&n) {
        return Err(malformed(format!(
            "field \"{key}\" is not a non-negative integer"
        )));
    }
    Ok(n as u32)
}

fn table_to_value(rule: &TableRule) -> Value {
    match *rule {
        TableRule::Empty => obj(vec![("scope", Value::String("empty".into()))]),
        TableRule::Cell { row, col } => obj(vec![
            ("scope", Value::String("cell".into())),
            ("row", Value::Number(row as f64)),
            ("col", Value::Number(col as f64)),
        ]),
        TableRule::Row(row) => obj(vec![
            ("scope", Value::String("row".into())),
            ("row", Value::Number(row as f64)),
        ]),
        TableRule::Col(col) => obj(vec![
            ("scope", Value::String("col".into())),
            ("col", Value::Number(col as f64)),
        ]),
        TableRule::Table => obj(vec![("scope", Value::String("table".into()))]),
    }
}

fn table_from_value(v: &Value) -> Result<TableRule, AwError> {
    match str_field(v, "scope")? {
        "empty" => Ok(TableRule::Empty),
        "cell" => Ok(TableRule::Cell {
            row: u32_field(v, "row")?,
            col: u32_field(v, "col")?,
        }),
        "row" => Ok(TableRule::Row(u32_field(v, "row")?)),
        "col" => Ok(TableRule::Col(u32_field(v, "col")?)),
        "table" => Ok(TableRule::Table),
        other => Err(malformed(format!("unknown table scope {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_induct::{NodeSet, Site};

    fn training_site() -> Site {
        let page = |rows: &[(&str, &str)]| {
            let mut s = String::from("<table class='stores'>");
            for (n, a) in rows {
                s.push_str(&format!("<tr><td><b>{n}</b></td><td>{a}</td></tr>"));
            }
            s + "</table>"
        };
        Site::from_html(&[
            page(&[("ALPHA CO", "1 Elm"), ("BETA LLC", "2 Oak")]),
            page(&[("GAMMA INC", "3 Fir"), ("DELTA LTD", "4 Ash")]),
        ])
    }

    fn seed(site: &Site) -> NodeSet {
        let mut l = NodeSet::new();
        l.extend(site.find_text("ALPHA CO"));
        l.extend(site.find_text("DELTA LTD"));
        l
    }

    fn fresh_page() -> Document {
        aw_dom::parse(
            "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr>\
             <tr><td><b>SIGMA BROS</b></td><td>7 Oak</td></tr></table>",
        )
    }

    #[test]
    fn round_trip_is_byte_identical_for_every_language() {
        let site = training_site();
        let labels = seed(&site);
        let crawl = [fresh_page(), aw_dom::parse("<p>unrelated</p>")];
        for language in WrapperLanguage::ALL {
            let rule = LearnedRule::learn(&site, language, &labels);
            let wrapper = CompiledWrapper::from_rule(rule.clone());
            let restored = CompiledWrapper::from_json(&wrapper.to_json()).unwrap();
            assert_eq!(restored.rule(), &rule, "{language}");
            assert_eq!(restored.language(), language);
            for doc in &crawl {
                assert_eq!(
                    restored.extract(doc),
                    wrapper.extract(doc),
                    "{language} extraction differs after round trip"
                );
                assert_eq!(restored.extract(doc), rule.apply(doc), "{language}");
            }
            // And the serialized form itself is stable.
            assert_eq!(restored.to_json(), wrapper.to_json(), "{language}");
        }
    }

    #[test]
    fn extract_pages_matches_extract_for_all_thread_counts() {
        let site = training_site();
        let rule = LearnedRule::learn(&site, WrapperLanguage::XPath, &seed(&site));
        let crawl: Vec<Document> = vec![
            fresh_page(),
            aw_dom::parse("<p>nothing here</p>"),
            fresh_page(),
        ];
        let sequential: Vec<Vec<NodeId>> = {
            let w = CompiledWrapper::from_rule(rule.clone());
            crawl.iter().map(|d| w.extract(d)).collect()
        };
        for threads in [1, 2, 4] {
            let w = CompiledWrapper::from_rule(rule.clone()).with_executor(Executor::new(threads));
            assert_eq!(w.extract_pages(&crawl), sequential, "threads {threads}");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let site = training_site();
        let wrapper = CompiledWrapper::from_rule(LearnedRule::learn(
            &site,
            WrapperLanguage::XPath,
            &seed(&site),
        ));
        let payload = wrapper
            .to_json()
            .replace("\"version\": 1.0", "\"version\": 2.0");
        assert_eq!(
            CompiledWrapper::from_json(&payload).unwrap_err(),
            AwError::UnsupportedVersion {
                found: 2,
                supported: ARTIFACT_VERSION
            }
        );
        let fractional = wrapper
            .to_json()
            .replace("\"version\": 1.0", "\"version\": 1.5");
        assert!(matches!(
            CompiledWrapper::from_json(&fractional).unwrap_err(),
            AwError::MalformedArtifact(_)
        ));
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        for payload in [
            "",
            "not json",
            "{}",
            r#"{"format":"aw-wrapper"}"#,
            r#"{"format":"other","version":1,"language":"XPATH","rule":{"xpath":"//a"}}"#,
            r#"{"format":"aw-wrapper","version":1,"language":"XPATH"}"#,
            r#"{"format":"aw-wrapper","version":1,"language":"XPATH","rule":{}}"#,
            r#"{"format":"aw-wrapper","version":1,"language":"LR","rule":{"left":"<b>"}}"#,
            r#"{"format":"aw-wrapper","version":1,"language":"TABLE","rule":{"scope":"cell","row":1.5,"col":2}}"#,
            r#"{"format":"aw-wrapper","version":1,"language":"TABLE","rule":{"scope":"diagonal"}}"#,
        ] {
            assert!(
                matches!(
                    CompiledWrapper::from_json(payload),
                    Err(AwError::MalformedArtifact(_))
                ),
                "accepted: {payload}"
            );
        }
        assert_eq!(
            CompiledWrapper::from_json(
                r#"{"format":"aw-wrapper","version":1,"language":"CSV","rule":{}}"#
            )
            .unwrap_err(),
            AwError::UnknownLanguage("CSV".into())
        );
        assert!(matches!(
            CompiledWrapper::from_json(
                r#"{"format":"aw-wrapper","version":1,"language":"XPATH","rule":{"xpath":"///"}}"#
            )
            .unwrap_err(),
            AwError::InvalidRule(_)
        ));
    }

    #[test]
    fn bundle_round_trips_all_languages() {
        let site = training_site();
        let labels = seed(&site);
        let mut bundle = WrapperBundle::new();
        for language in WrapperLanguage::ALL {
            bundle.insert(
                format!("site-{language}"),
                CompiledWrapper::from_rule(LearnedRule::learn(&site, language, &labels)),
            );
        }
        let json = bundle.to_json();
        assert!(json.contains("\"format\": \"aw-bundle\""), "{json}");
        assert!(json.contains("\"version\": 2.0"), "{json}");
        let restored = WrapperBundle::from_json(&json).unwrap();
        assert_eq!(restored.len(), bundle.len());
        assert_eq!(
            restored.site_keys().collect::<Vec<_>>(),
            bundle.site_keys().collect::<Vec<_>>()
        );
        let page = fresh_page();
        for (key, wrapper) in bundle.iter() {
            let r = restored.get(key).unwrap();
            assert_eq!(r.rule(), wrapper.rule(), "{key}");
            assert_eq!(r.extract(&page), wrapper.extract(&page), "{key}");
        }
        // Serialization is stable through the round trip.
        assert_eq!(restored.to_json(), json);
    }

    #[test]
    fn bundle_reader_accepts_v1_artifacts_byte_for_byte() {
        let site = training_site();
        let labels = seed(&site);
        let page = fresh_page();
        for language in WrapperLanguage::ALL {
            let wrapper = CompiledWrapper::from_rule(LearnedRule::learn(&site, language, &labels));
            let v1_payload = wrapper.to_json();
            let bundle = WrapperBundle::from_json(&v1_payload).unwrap();
            assert_eq!(bundle.len(), 1, "{language}");
            let member = bundle.get(V1_SITE_KEY).unwrap();
            assert_eq!(member.rule(), wrapper.rule(), "{language}");
            assert_eq!(member.extract(&page), wrapper.extract(&page), "{language}");
        }
    }

    #[test]
    fn malformed_bundle_members_report_their_site_key() {
        let payload = r#"{
            "format": "aw-bundle",
            "version": 2,
            "wrappers": {
                "good-site": { "language": "LR", "rule": { "left": "<b>", "right": "</b>" } },
                "bad-site": { "language": "XPATH", "rule": {} }
            }
        }"#;
        let err = WrapperBundle::from_json(payload).unwrap_err();
        let AwError::MalformedArtifact(msg) = &err else {
            panic!("unexpected error {err:?}");
        };
        assert!(msg.contains("bad-site"), "{msg}");
        assert!(msg.contains("xpath"), "{msg}");
        // An unparsable member rule carries the key too.
        let invalid = payload.replace(r#""rule": {}"#, r#""rule": { "xpath": "///" }"#);
        let err = WrapperBundle::from_json(&invalid).unwrap_err();
        assert!(
            matches!(&err, AwError::InvalidRule(m) if m.contains("bad-site")),
            "{err:?}"
        );
    }

    #[test]
    fn bundle_rejects_wrong_shapes() {
        for payload in [
            r#"{"format":"aw-bundle","version":2}"#,
            r#"{"format":"aw-bundle","version":2,"wrappers":[]}"#,
            r#"{"format":"mystery","version":2,"wrappers":{}}"#,
            r#"{"version":2,"wrappers":{}}"#,
        ] {
            assert!(
                matches!(
                    WrapperBundle::from_json(payload),
                    Err(AwError::MalformedArtifact(_))
                ),
                "accepted: {payload}"
            );
        }
        assert_eq!(
            WrapperBundle::from_json(r#"{"format":"aw-bundle","version":7,"wrappers":{}}"#)
                .unwrap_err(),
            AwError::UnsupportedVersion {
                found: 7,
                supported: BUNDLE_VERSION
            }
        );
        // A v2 bundle is not a valid v1 artifact: the single-wrapper
        // reader refuses it rather than guessing.
        let mut bundle = WrapperBundle::new();
        let site = training_site();
        bundle.insert(
            "only",
            CompiledWrapper::from_rule(LearnedRule::learn(
                &site,
                WrapperLanguage::XPath,
                &seed(&site),
            )),
        );
        assert!(matches!(
            CompiledWrapper::from_json(&bundle.to_json()),
            Err(AwError::MalformedArtifact(_))
        ));
        // Empty bundles are legal (a registry can be drained).
        let empty = WrapperBundle::from_json(&WrapperBundle::new().to_json()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn artifact_declares_format_version_and_language() {
        let site = training_site();
        let wrapper = CompiledWrapper::from_rule(LearnedRule::learn(
            &site,
            WrapperLanguage::Hlrt,
            &seed(&site),
        ));
        let json = wrapper.to_json();
        assert!(json.contains("\"format\": \"aw-wrapper\""), "{json}");
        assert!(json.contains("\"version\": 1.0"), "{json}");
        assert!(json.contains("\"language\": \"HLRT\""), "{json}");
    }
}
