//! Single-entity extraction — Appendix B.2.
//!
//! When each page carries exactly one entity of interest (an album title,
//! a product page's name), the `P(X)` list prior does not apply; instead:
//! enumerate the wrapper space, **discard wrappers that extract more than
//! one node on any page**, and pick the wrapper covering the most labels
//! (equivalently, maximizing `P(L | X)` — §B.2). Noise-trained wrappers
//! over-generalize, match several nodes per page, and get filtered out.

use crate::config::NtwConfig;
use crate::learner::subsample;
use aw_dom::PageNode;
use aw_enum::top_down;
use aw_induct::{FeatureBased, NodeSet, Site, XPathInductor};

/// A single-entity candidate wrapper.
#[derive(Clone, Debug)]
pub struct SingleEntityWrapper {
    /// Extraction (at most one node per page).
    pub extraction: NodeSet,
    /// Display rule.
    pub rule: String,
    /// Number of labels the wrapper covers.
    pub coverage: usize,
}

/// The outcome: all top-coverage wrappers (ties are meaningful — the paper
/// observed "multiple wrappers with the same rank at the top", each a
/// correct alternate location of the entity).
#[derive(Clone, Debug)]
pub struct SingleEntityOutcome {
    /// Wrappers with maximal label coverage, after the one-per-page filter.
    pub best: Vec<SingleEntityWrapper>,
    /// All surviving (one-per-page) candidates, coverage-descending.
    pub candidates: Vec<SingleEntityWrapper>,
    /// Enumeration cost.
    pub inductor_calls: usize,
}

/// Learns a single-entity xpath wrapper from noisy labels.
pub fn learn_single_entity(
    site: &Site,
    labels: &NodeSet,
    config: &NtwConfig,
) -> SingleEntityOutcome {
    let inductor = XPathInductor::new(site);
    learn_single_entity_with(&inductor, site, labels, config)
}

/// Single-entity learning over any feature-based inductor.
pub fn learn_single_entity_with<I>(
    inductor: &I,
    site: &Site,
    labels: &NodeSet,
    config: &NtwConfig,
) -> SingleEntityOutcome
where
    I: FeatureBased<Item = PageNode>,
{
    let space = top_down(inductor, &subsample(labels, config.max_enumeration_labels));
    let inductor_calls = space.inductor_calls;

    let mut candidates: Vec<SingleEntityWrapper> = space
        .wrappers
        .into_iter()
        .filter(|w| at_most_one_per_page(site, &w.extraction))
        .map(|w| SingleEntityWrapper {
            coverage: w.extraction.iter().filter(|n| labels.contains(n)).count(),
            rule: w.rule,
            extraction: w.extraction,
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.coverage
            .cmp(&a.coverage)
            .then_with(|| a.rule.cmp(&b.rule))
    });

    let top = candidates.first().map_or(0, |c| c.coverage);
    let best = candidates
        .iter()
        .filter(|c| c.coverage == top && top > 0)
        .cloned()
        .collect();
    SingleEntityOutcome {
        best,
        candidates,
        inductor_calls,
    }
}

fn at_most_one_per_page(site: &Site, x: &NodeSet) -> bool {
    let mut seen = vec![false; site.page_count()];
    for n in x {
        let p = n.page as usize;
        if seen[p] {
            return false;
        }
        seen[p] = true;
    }
    !x.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Album pages: title appears in a crumb and a heading (two correct
    /// consistent locations), and also as a title track + review quote
    /// (noise locations, one node each but structurally inconsistent).
    fn disc_site() -> Site {
        let page = |title: &str, tracks: &[&str]| {
            let mut s =
                format!("<div class='crumb'><span>{title}</span></div><h1>{title}</h1><ol>");
            for t in tracks {
                s.push_str(&format!("<li>{t}</li>"));
            }
            s.push_str("</ol>");
            s
        };
        Site::from_html(&[
            page("Abbey Road", &["Abbey Road", "Golden River", "Blue Sky"]),
            page(
                "Wild Horses",
                &["Silent Road", "Wild Horses", "Crimson Sun"],
            ),
            page("Night Drive", &["Night Drive", "Cold Star", "Last Call"]),
        ])
    }

    /// Noisy title labels: every node whose text equals the page's album
    /// title — crumb, h1, AND the title track <li>.
    fn noisy_title_labels(site: &Site) -> NodeSet {
        ["Abbey Road", "Wild Horses", "Night Drive"]
            .iter()
            .flat_map(|t| site.find_text(t))
            .collect()
    }

    #[test]
    fn finds_consistent_title_wrappers() {
        let site = disc_site();
        let labels = noisy_title_labels(&site);
        assert_eq!(labels.len(), 9, "3 locations × 3 pages");
        let out = learn_single_entity(&site, &labels, &NtwConfig::default());
        // The crumb wrapper and the h1 wrapper both cover 3 labels with
        // one node per page; the title-track wrapper (li position varies)
        // covers fewer or extracts multiple.
        assert!(!out.best.is_empty());
        for w in &out.best {
            assert_eq!(w.coverage, 3, "{}", w.rule);
            assert_eq!(w.extraction.len(), 3);
            // Each extraction must be a crumb or h1 node.
            for &n in &w.extraction {
                let (doc, id) = site.resolve(n);
                let parent_tag = doc.parent(id).and_then(|p| doc.tag(p)).unwrap();
                assert!(
                    parent_tag == "span" || parent_tag == "h1",
                    "wrapper {} extracted under <{parent_tag}>",
                    w.rule
                );
            }
        }
        // The paper observed multiple tied correct wrappers.
        assert!(
            out.best.len() >= 2,
            "expected crumb + h1 ties: {:?}",
            out.best.iter().map(|w| &w.rule).collect::<Vec<_>>()
        );
    }

    #[test]
    fn overgeneral_wrappers_filtered() {
        let site = disc_site();
        let labels = noisy_title_labels(&site);
        let out = learn_single_entity(&site, &labels, &NtwConfig::default());
        for c in &out.candidates {
            // Every surviving candidate extracts ≤ 1 node per page.
            let mut per_page = std::collections::HashMap::new();
            for n in &c.extraction {
                *per_page.entry(n.page).or_insert(0usize) += 1;
            }
            assert!(per_page.values().all(|&v| v <= 1), "{}", c.rule);
        }
    }

    #[test]
    fn empty_labels_yield_no_best() {
        let site = disc_site();
        let out = learn_single_entity(&site, &NodeSet::new(), &NtwConfig::default());
        assert!(out.best.is_empty());
        assert_eq!(out.inductor_calls, 0);
    }

    #[test]
    fn one_per_page_check() {
        let site = disc_site();
        let labels = noisy_title_labels(&site);
        assert!(!at_most_one_per_page(&site, &labels));
        let one: NodeSet = site.find_text("Golden River").into_iter().collect();
        assert!(at_most_one_per_page(&site, &one));
        assert!(!at_most_one_per_page(&site, &NodeSet::new()));
    }
}
