//! The unified pipeline API: one [`Engine`], four staged calls.
//!
//! The paper's pipeline — **annotate → enumerate → rank → extract**
//! (§3–§6) — used to be spread over free functions in five crates, each
//! caller re-threading the same `(model, language, config, pool)` tuple.
//! An `Engine` is built once from those ingredients and exposes the
//! stages as typed methods:
//!
//! ```text
//! EngineBuilder ──build()──▶ Engine
//!   engine.annotate(&site)            → NodeSet          (noisy labels)
//!   engine.enumerate(&site, &labels)  → WrapperSpace     (the W(L) of §4)
//!   engine.rank(space)                → RankedWrappers   (Equation 1, §6)
//!   ranked.best()?.compile()          → CompiledWrapper  (portable artifact)
//! ```
//!
//! `engine.learn` fuses enumerate + rank for the common case, and
//! [`Engine::learn_sites`] ranks many sites' spaces in one site-sharded,
//! page-parallel pass (`aw_rank::score_xpath_spaces` /
//! `aw_xpath::ShardedBatch`) without the caller wiring
//! `sharded_xpath_space` / `sharded_extractions` by hand.
//!
//! Every fallible stage returns `Result<_, AwError>` — no more
//! `Option`-or-panic at stage boundaries.

use crate::artifact::CompiledWrapper;
use crate::config::{NtwConfig, WrapperLanguage};
use crate::error::AwError;
use crate::learner::{
    enumerate_language, naive_impl, rank_space, sort_ranked, LearnedWrapper, NtwOutcome,
};
use crate::rule::{LearnedRule, LearnedRuleSet};
use aw_dom::PageNode;
use aw_enum::{EnumeratedWrapper, EnumerationResult};
use aw_induct::{NodeSet, Site};
use aw_pool::Executor;
use aw_rank::{RankingModel, SiteSpace};

/// A source of (noisy) labels: the *annotate* stage of the pipeline.
///
/// Implemented by `aw_annotate`'s dictionary and marker annotators and by
/// any `Fn(&Site) -> NodeSet` closure (use a closure to adapt annotators
/// that need extra inputs, like `SyntheticAnnotator`'s gold set).
pub trait Annotator: Send + Sync {
    /// Labels every page of the site.
    fn annotate(&self, site: &Site) -> NodeSet;
}

impl<F> Annotator for F
where
    F: Fn(&Site) -> NodeSet + Send + Sync,
{
    fn annotate(&self, site: &Site) -> NodeSet {
        self(site)
    }
}

impl Annotator for aw_annotate::DictionaryAnnotator {
    fn annotate(&self, site: &Site) -> NodeSet {
        aw_annotate::DictionaryAnnotator::annotate(self, site)
    }
}

impl Annotator for aw_annotate::MarkerAnnotator {
    fn annotate(&self, site: &Site) -> NodeSet {
        aw_annotate::MarkerAnnotator::annotate(self, site)
    }
}

/// Builds an [`Engine`]; every knob has a sensible default except the
/// ranking model.
pub struct EngineBuilder {
    model: RankingModel,
    language: WrapperLanguage,
    config: NtwConfig,
    executor: Option<Executor>,
    template_cache: bool,
    annotator: Option<Box<dyn Annotator>>,
}

impl EngineBuilder {
    /// Starts a builder from the ranking model (annotator `(p, r)` +
    /// publication prior — the domain knowledge of §6).
    pub fn new(model: RankingModel) -> EngineBuilder {
        EngineBuilder {
            model,
            language: WrapperLanguage::XPath,
            config: NtwConfig::default(),
            executor: None,
            template_cache: true,
            annotator: None,
        }
    }

    /// The wrapper language to learn (default: XPATH).
    pub fn language(mut self, language: WrapperLanguage) -> Self {
        self.language = language;
        self
    }

    /// The full learner configuration (enumeration algorithm, ranking
    /// mode, label subsampling cap).
    pub fn config(mut self, config: NtwConfig) -> Self {
        self.config = config;
        self
    }

    /// The label source for [`Engine::annotate`] / [`Engine::learn_sites`].
    pub fn annotator(mut self, annotator: impl Annotator + 'static) -> Self {
        self.annotator = Some(Box::new(annotator));
        self
    }

    /// An explicit executor for parallel stages (default:
    /// [`Executor::global`], the process-wide work-stealing pool
    /// honouring `AW_THREADS`). Passing a dedicated executor isolates
    /// this engine's parallelism from the rest of the process.
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Shorthand for [`EngineBuilder::executor`] with a dedicated pool
    /// of a fixed thread count.
    pub fn threads(self, threads: usize) -> Self {
        self.executor(Executor::new(threads))
    }

    /// Enables/disables the cross-page template cache in batch xpath
    /// stages (default: enabled). Replay is byte-identical to fresh
    /// evaluation, so the only reason to disable it is to bound memory
    /// on workloads with unbounded distinct templates.
    pub fn template_cache(mut self, enabled: bool) -> Self {
        self.template_cache = enabled;
        self
    }

    /// Finishes the engine.
    pub fn build(self) -> Engine {
        Engine {
            model: self.model,
            language: self.language,
            config: self.config,
            executor: self.executor.unwrap_or_else(|| Executor::global().clone()),
            template_cache: self.template_cache,
            annotator: self.annotator,
        }
    }
}

/// The unified pipeline engine: annotate → enumerate → rank → compile.
///
/// Build once via [`Engine::builder`], share freely (`&Engine` is `Sync`);
/// all state is configuration, so one engine serves any number of sites
/// and threads.
pub struct Engine {
    model: RankingModel,
    language: WrapperLanguage,
    config: NtwConfig,
    executor: Executor,
    template_cache: bool,
    annotator: Option<Box<dyn Annotator>>,
}

impl Engine {
    /// Starts an [`EngineBuilder`] from a ranking model.
    pub fn builder(model: RankingModel) -> EngineBuilder {
        EngineBuilder::new(model)
    }

    /// The configured wrapper language.
    pub fn language(&self) -> WrapperLanguage {
        self.language
    }

    /// The learner configuration.
    pub fn config(&self) -> &NtwConfig {
        &self.config
    }

    /// The ranking model (without the config's mode applied).
    pub fn model(&self) -> &RankingModel {
        &self.model
    }

    /// The executor driving parallel stages.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Whether batch xpath stages keep cross-page template caches.
    pub fn template_cache_enabled(&self) -> bool {
        self.template_cache
    }

    /// **Stage 1 — annotate**: labels the site with the configured
    /// annotator.
    ///
    /// Errors with [`AwError::NoAnnotator`] when the engine was built
    /// without one, and [`AwError::NoLabels`] when the annotator fires on
    /// nothing (the pipeline cannot proceed from zero labels).
    pub fn annotate(&self, site: &Site) -> Result<NodeSet, AwError> {
        let annotator = self.annotator.as_deref().ok_or(AwError::NoAnnotator)?;
        let labels = annotator.annotate(site);
        if labels.is_empty() {
            return Err(AwError::NoLabels);
        }
        Ok(labels)
    }

    /// **Stage 2 — enumerate**: the wrapper space `W(L)` of the noisy
    /// labels (§4), using the configured enumeration algorithm.
    pub fn enumerate<'s>(
        &self,
        site: &'s Site,
        labels: &NodeSet,
    ) -> Result<WrapperSpace<'s>, AwError> {
        if labels.is_empty() {
            return Err(AwError::NoLabels);
        }
        let result = enumerate_language(site, self.language, labels, &self.config);
        if result.is_empty() {
            return Err(AwError::EmptyWrapperSpace);
        }
        Ok(WrapperSpace {
            site,
            language: self.language,
            labels: labels.clone(),
            result,
        })
    }

    /// **Stage 3 — rank**: scores every candidate with
    /// `log P(L | X) + log P(X)` (Equation 1) and sorts best-first.
    pub fn rank<'s>(&self, space: WrapperSpace<'s>) -> Result<RankedWrappers<'s>, AwError> {
        let WrapperSpace {
            site,
            language,
            labels,
            result,
        } = space;
        let outcome = rank_space(
            result,
            site,
            &labels,
            &self.model.with_mode(self.config.mode),
        );
        Ok(RankedWrappers {
            site,
            language,
            executor: self.executor.clone(),
            outcome,
        })
    }

    /// Enumerate + rank in one call — the §3 generate-and-test loop.
    pub fn learn<'s>(
        &self,
        site: &'s Site,
        labels: &NodeSet,
    ) -> Result<RankedWrappers<'s>, AwError> {
        let space = self.enumerate(site, labels)?;
        self.rank(space)
    }

    /// Annotates and learns every site of a corpus in one batch.
    ///
    /// Requires an annotator. Sites where the annotator fires on nothing
    /// yield an empty [`RankedWrappers`] (a corpus run must not abort on
    /// one barren site). See [`Engine::learn_sites_labeled`] for the
    /// execution strategy.
    pub fn learn_sites<'s>(&self, sites: &'s [Site]) -> Result<Vec<RankedWrappers<'s>>, AwError> {
        let annotator = self.annotator.as_deref().ok_or(AwError::NoAnnotator)?;
        let labels: Vec<NodeSet> = self.executor.map(sites, |site| annotator.annotate(site));
        let labeled: Vec<(&Site, &NodeSet)> = sites.iter().zip(&labels).collect();
        self.learn_sites_labeled(&labeled)
    }

    /// Learns every `(site, labels)` pair of a corpus in one batch.
    ///
    /// For the XPATH language the sites' candidate spaces are ranked in
    /// **one site-sharded, page-parallel pass**: per-site prefix tries
    /// (`aw_xpath::ShardedBatch`) evaluated only against their own site's
    /// pages through the engine's executor
    /// (`aw_rank::score_xpath_spaces`), with cross-page template replay
    /// when the cache knob is on — the plumbing callers previously
    /// wired by hand. Other languages learn site-parallel through the
    /// same executor. Output order matches
    /// input order and is deterministic across thread counts; sites with
    /// empty labels yield an empty [`RankedWrappers`].
    ///
    /// Candidate extractions are replayed through the compiled xpath
    /// engines, which are byte-identical to the reference interpreter;
    /// the one documented divergence from inductor-side extraction is the
    /// wildcard-step corner of `XPathInductor::xpath`.
    pub fn learn_sites_labeled<'s>(
        &self,
        labeled: &[(&'s Site, &NodeSet)],
    ) -> Result<Vec<RankedWrappers<'s>>, AwError> {
        if self.language == WrapperLanguage::XPath {
            return Ok(self.learn_sites_sharded(labeled));
        }
        Ok(self.executor.map(labeled, |&(site, labels)| {
            self.learn(site, labels)
                .unwrap_or_else(|_| self.empty_ranked(site))
        }))
    }

    /// The sharded multi-site path: enumerate per site, then rank every
    /// site's space through per-site tries in one page-parallel pass.
    fn learn_sites_sharded<'s>(&self, labeled: &[(&'s Site, &NodeSet)]) -> Vec<RankedWrappers<'s>> {
        // Enumeration is inductor-bound and site-local: drive it through
        // the executor (any nested parallel stage joins the same team).
        let spaces: Vec<Option<EnumerationResult<PageNode>>> =
            self.executor.map(labeled, |&(site, labels)| {
                (!labels.is_empty())
                    .then(|| enumerate_language(site, self.language, labels, &self.config))
            });

        // Candidate xpaths per site, remembering which wrapper each
        // candidate came from.
        let mut wrapper_idx: Vec<Vec<usize>> = Vec::with_capacity(spaces.len());
        let mut paths: Vec<Vec<aw_xpath::XPath>> = Vec::with_capacity(spaces.len());
        for space in &spaces {
            let candidates = space
                .as_ref()
                .map(|s| s.xpath_candidates())
                .unwrap_or_default();
            wrapper_idx.push(candidates.iter().map(|(i, _)| *i).collect());
            paths.push(candidates.into_iter().map(|(_, xp)| xp).collect());
        }

        let model = self.model.with_mode(self.config.mode);
        let site_spaces: Vec<SiteSpace<'_>> = labeled
            .iter()
            .zip(&paths)
            .map(|(&(site, labels), site_paths)| SiteSpace {
                site,
                labels,
                paths: site_paths,
            })
            .collect();
        let mut scored =
            aw_rank::score_xpath_spaces(&model, &site_spaces, &self.executor, self.template_cache);

        labeled
            .iter()
            .zip(spaces)
            .zip(wrapper_idx)
            .zip(scored.iter_mut())
            .map(|(((&(site, labels), space), idx), site_scored)| {
                let Some(space) = space else {
                    return self.empty_ranked(site);
                };
                let mut ranked: Vec<LearnedWrapper> = Vec::with_capacity(space.len());
                let mut covered = vec![false; space.wrappers.len()];
                for (i, (extraction, score)) in idx.iter().zip(site_scored.drain(..)) {
                    let w = &space.wrappers[*i];
                    covered[*i] = true;
                    ranked.push(LearnedWrapper {
                        extraction,
                        rule: w.rule.clone(),
                        seed: w.seed.clone(),
                        score,
                    });
                }
                // Wrappers whose rule did not parse back as an xpath (not
                // expected for XPATH spaces) are scored directly.
                for (i, w) in space.wrappers.iter().enumerate() {
                    if !covered[i] {
                        let score = model.score(site, labels, &w.extraction);
                        ranked.push(LearnedWrapper {
                            extraction: w.extraction.clone(),
                            rule: w.rule.clone(),
                            seed: w.seed.clone(),
                            score,
                        });
                    }
                }
                sort_ranked(&mut ranked);
                RankedWrappers {
                    site,
                    language: self.language,
                    executor: self.executor.clone(),
                    outcome: NtwOutcome {
                        ranked,
                        inductor_calls: space.inductor_calls,
                        wrapper_space_size: space.len(),
                    },
                }
            })
            .collect()
    }

    /// The NAIVE baseline of §7.2: the inductor run once on all labels.
    pub fn naive(&self, site: &Site, labels: &NodeSet) -> Result<LearnedWrapper, AwError> {
        if labels.is_empty() {
            return Err(AwError::NoLabels);
        }
        Ok(naive_impl(site, self.language, labels))
    }

    fn empty_ranked<'s>(&self, site: &'s Site) -> RankedWrappers<'s> {
        RankedWrappers {
            site,
            language: self.language,
            executor: self.executor.clone(),
            outcome: NtwOutcome {
                ranked: Vec::new(),
                inductor_calls: 0,
                wrapper_space_size: 0,
            },
        }
    }
}

/// The enumerated wrapper space `W(L)` of one site — the typed handle
/// between the *enumerate* and *rank* stages.
#[derive(Clone, Debug)]
pub struct WrapperSpace<'s> {
    site: &'s Site,
    language: WrapperLanguage,
    labels: NodeSet,
    result: EnumerationResult<PageNode>,
}

impl<'s> WrapperSpace<'s> {
    /// The site the space was enumerated on.
    pub fn site(&self) -> &'s Site {
        self.site
    }

    /// The wrapper language.
    pub fn language(&self) -> WrapperLanguage {
        self.language
    }

    /// The labels the space was enumerated from (ranking scores against
    /// the full set, not the subsampled enumeration seed).
    pub fn labels(&self) -> &NodeSet {
        &self.labels
    }

    /// Number of distinct wrappers (the `k` of Theorems 2–3).
    pub fn len(&self) -> usize {
        self.result.len()
    }

    /// True when no wrappers were enumerated.
    pub fn is_empty(&self) -> bool {
        self.result.is_empty()
    }

    /// Inductor invocations spent (the Figure 2(a)/(b) metric).
    pub fn inductor_calls(&self) -> usize {
        self.result.inductor_calls
    }

    /// The distinct wrappers, in deterministic (extraction) order.
    pub fn wrappers(&self) -> &[EnumeratedWrapper<PageNode>] {
        &self.result.wrappers
    }

    /// The underlying enumeration result.
    pub fn into_result(self) -> EnumerationResult<PageNode> {
        self.result
    }
}

/// The ranked wrapper space of one site — the *rank* stage's output,
/// carrying enough context (site, language, executor) for its wrappers
/// to compile into portable artifacts.
#[derive(Debug)]
pub struct RankedWrappers<'s> {
    site: &'s Site,
    language: WrapperLanguage,
    executor: Executor,
    outcome: NtwOutcome,
}

impl<'s> RankedWrappers<'s> {
    /// The site the wrappers were learned on.
    pub fn site(&self) -> &'s Site {
        self.site
    }

    /// The wrapper language.
    pub fn language(&self) -> WrapperLanguage {
        self.language
    }

    /// The winning wrapper, if any label produced one.
    pub fn best(&self) -> Option<RankedWrapper<'_>> {
        self.get(0)
    }

    /// The `i`-th ranked wrapper (0 = best).
    pub fn get(&self, i: usize) -> Option<RankedWrapper<'_>> {
        self.outcome.ranked.get(i).map(|wrapper| RankedWrapper {
            site: self.site,
            language: self.language,
            executor: &self.executor,
            wrapper,
        })
    }

    /// Iterates the ranked wrappers best-first.
    pub fn iter(&self) -> impl Iterator<Item = RankedWrapper<'_>> {
        (0..self.len()).filter_map(|i| self.get(i))
    }

    /// Number of ranked candidates.
    pub fn len(&self) -> usize {
        self.outcome.ranked.len()
    }

    /// True when no candidate was ranked (empty labels on a corpus run).
    pub fn is_empty(&self) -> bool {
        self.outcome.ranked.is_empty()
    }

    /// Inductor invocations spent during enumeration.
    pub fn inductor_calls(&self) -> usize {
        self.outcome.inductor_calls
    }

    /// Distinct wrappers enumerated (`k`).
    pub fn wrapper_space_size(&self) -> usize {
        self.outcome.wrapper_space_size
    }

    /// The legacy outcome view (shared with the deprecated facades).
    pub fn outcome(&self) -> &NtwOutcome {
        &self.outcome
    }

    /// Converts into the legacy [`NtwOutcome`].
    pub fn into_outcome(self) -> NtwOutcome {
        self.outcome
    }

    /// Portable rules for **all** ranked wrappers, compiled as a batched
    /// [`LearnedRuleSet`] (best wrapper first).
    pub fn rule_set(&self) -> LearnedRuleSet {
        self.outcome.rule_set(self.site, self.language)
    }
}

/// One ranked wrapper with its learning context — derefs to
/// [`LearnedWrapper`] for the extraction/rule/score fields, and compiles
/// into a portable [`CompiledWrapper`].
#[derive(Clone, Copy, Debug)]
pub struct RankedWrapper<'a> {
    site: &'a Site,
    language: WrapperLanguage,
    executor: &'a Executor,
    wrapper: &'a LearnedWrapper,
}

impl RankedWrapper<'_> {
    /// **Stage 4 — compile**: learns the portable rule from this
    /// wrapper's seed and packages it as a serving artifact (compiled
    /// xpath trie + executor, `to_json`/`from_json` for deployment).
    pub fn compile(&self) -> CompiledWrapper {
        CompiledWrapper::from_rule(self.portable_rule()).with_executor(self.executor.clone())
    }

    /// The portable rule, detached from the training site.
    pub fn portable_rule(&self) -> LearnedRule {
        LearnedRule::learn(self.site, self.language, &self.wrapper.seed)
    }
}

impl std::ops::Deref for RankedWrapper<'_> {
    type Target = LearnedWrapper;

    fn deref(&self) -> &LearnedWrapper {
        self.wrapper
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Enumeration;
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_rank::{AnnotatorModel, ListFeatures, PublicationModel, RankingModel};

    fn dealer_site() -> Site {
        let page = |names: &[&str]| -> String {
            let mut s = String::from("<div class='list'>");
            for (i, n) in names.iter().enumerate() {
                s.push_str(&format!(
                    "<tr><td><u>{n}</u><br>{i} Elm St.<br>CITY, ST 3870{i}</td></tr>"
                ));
            }
            s.push_str("</div><div class='footer'>contact us</div>");
            s
        };
        Site::from_html(&[
            page(&["ALPHA FURNITURE", "BETA HOME", "GAMMA DECOR"]),
            page(&["DELTA BEDS", "EPSILON SOFAS"]),
            page(&["ZETA LIGHTS", "ETA RUGS", "THETA DESKS"]),
        ])
    }

    fn gold(site: &Site) -> NodeSet {
        site.text_nodes()
            .iter()
            .copied()
            .filter(|&n| {
                let (doc, id) = site.resolve(n);
                doc.parent(id).and_then(|p| doc.tag(p)) == Some("u")
            })
            .collect()
    }

    fn model() -> RankingModel {
        RankingModel::new(
            AnnotatorModel::new(0.93, 0.5),
            PublicationModel::learn(&[
                ListFeatures {
                    schema_size: 3.0,
                    alignment: 0.0,
                },
                ListFeatures {
                    schema_size: 3.0,
                    alignment: 1.0,
                },
            ]),
        )
    }

    fn noisy_labels(site: &Site) -> NodeSet {
        let g: Vec<PageNode> = gold(site).into_iter().collect();
        let mut labels: NodeSet = g.iter().step_by(2).copied().collect();
        labels.extend(site.find_text("0 Elm St."));
        labels
    }

    #[test]
    fn staged_flow_matches_fused_learn() {
        let site = dealer_site();
        let labels = noisy_labels(&site);
        let engine = Engine::builder(model()).build();
        let space = engine.enumerate(&site, &labels).unwrap();
        assert!(space.len() >= 3);
        assert_eq!(space.language(), WrapperLanguage::XPath);
        let calls = space.inductor_calls();
        let staged = engine.rank(space).unwrap();
        let fused = engine.learn(&site, &labels).unwrap();
        assert_eq!(staged.inductor_calls(), calls);
        assert_eq!(
            staged.best().unwrap().extraction,
            fused.best().unwrap().extraction
        );
        assert_eq!(fused.best().unwrap().extraction, gold(&site));
    }

    #[test]
    fn empty_labels_error_instead_of_panicking() {
        let site = dealer_site();
        let engine = Engine::builder(model()).build();
        assert_eq!(
            engine.enumerate(&site, &NodeSet::new()).unwrap_err(),
            AwError::NoLabels
        );
        assert_eq!(
            engine.learn(&site, &NodeSet::new()).unwrap_err(),
            AwError::NoLabels
        );
        assert_eq!(
            engine.naive(&site, &NodeSet::new()).unwrap_err(),
            AwError::NoLabels
        );
        assert_eq!(engine.annotate(&site).unwrap_err(), AwError::NoAnnotator);
    }

    #[test]
    fn engine_annotate_uses_configured_annotator() {
        let site = dealer_site();
        let engine = Engine::builder(model())
            .annotator(DictionaryAnnotator::new(
                ["ALPHA FURNITURE", "THETA DESKS"],
                MatchMode::Exact,
            ))
            .build();
        let labels = engine.annotate(&site).unwrap();
        assert_eq!(labels.len(), 2);
        // A closure works as an annotator too.
        let by_closure = Engine::builder(model())
            .annotator(|s: &Site| s.find_text("BETA HOME").into_iter().collect::<NodeSet>())
            .build();
        assert_eq!(by_closure.annotate(&site).unwrap().len(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn facades_delegate_without_behaviour_change() {
        let site = dealer_site();
        let labels = noisy_labels(&site);
        let m = model();
        let config = NtwConfig::default();
        let engine = Engine::builder(m.clone()).config(config.clone()).build();
        let via_engine = engine.learn(&site, &labels).unwrap();
        let via_facade = crate::learner::learn(&site, WrapperLanguage::XPath, &labels, &m, &config);
        assert_eq!(via_facade.ranked.len(), via_engine.len());
        for (a, b) in via_facade.ranked.iter().zip(via_engine.iter()) {
            assert_eq!(a.extraction, b.extraction);
            assert_eq!(a.rule, b.rule);
            assert!((a.score.total - b.score.total).abs() < 1e-12);
        }
        let naive_facade = crate::learner::naive_wrapper(&site, WrapperLanguage::XPath, &labels);
        let naive_engine = engine.naive(&site, &labels).unwrap();
        assert_eq!(naive_facade.extraction, naive_engine.extraction);
        assert_eq!(naive_facade.rule, naive_engine.rule);
    }

    #[test]
    fn learn_sites_matches_per_site_learn() {
        let sites = [dealer_site(), dealer_site()];
        let labels: Vec<NodeSet> = sites.iter().map(noisy_labels).collect();
        let labeled: Vec<(&Site, &NodeSet)> = sites.iter().zip(&labels).collect();
        for threads in [1, 3] {
            let engine = Engine::builder(model()).threads(threads).build();
            let batch = engine.learn_sites_labeled(&labeled).unwrap();
            assert_eq!(batch.len(), 2);
            for ((site, site_labels), ranked) in labeled.iter().zip(&batch) {
                let solo = engine.learn(site, site_labels).unwrap();
                assert_eq!(ranked.len(), solo.len(), "threads {threads}");
                assert_eq!(
                    ranked.best().unwrap().extraction,
                    solo.best().unwrap().extraction,
                    "threads {threads}"
                );
                assert_eq!(ranked.inductor_calls(), solo.inductor_calls());
            }
        }
    }

    #[test]
    fn learn_sites_annotates_with_the_engine_annotator() {
        let sites = [dealer_site()];
        let engine = Engine::builder(model())
            .annotator(DictionaryAnnotator::new(
                ["ALPHA FURNITURE", "EPSILON SOFAS", "0 Elm St."],
                MatchMode::Exact,
            ))
            .build();
        let batch = engine.learn_sites(&sites).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].best().unwrap().extraction, gold(&sites[0]));
        // Without an annotator, the corpus call is a typed error.
        assert_eq!(
            Engine::builder(model())
                .build()
                .learn_sites(&sites)
                .unwrap_err(),
            AwError::NoAnnotator
        );
    }

    #[test]
    fn learn_sites_tolerates_barren_sites() {
        let sites = [dealer_site(), dealer_site()];
        let empty = NodeSet::new();
        let labels = noisy_labels(&sites[0]);
        let labeled: Vec<(&Site, &NodeSet)> = vec![(&sites[0], &empty), (&sites[1], &labels)];
        let engine = Engine::builder(model()).build();
        let batch = engine.learn_sites_labeled(&labeled).unwrap();
        assert!(batch[0].is_empty());
        assert!(batch[0].best().is_none());
        assert_eq!(batch[1].best().unwrap().extraction, gold(&sites[1]));
    }

    #[test]
    fn non_xpath_languages_learn_sites_too() {
        let sites = [dealer_site()];
        let labels: Vec<NodeSet> = sites.iter().map(noisy_labels).collect();
        let labeled: Vec<(&Site, &NodeSet)> = sites.iter().zip(&labels).collect();
        for language in [WrapperLanguage::Lr, WrapperLanguage::Hlrt] {
            let engine = Engine::builder(model()).language(language).build();
            let batch = engine.learn_sites_labeled(&labeled).unwrap();
            let solo = engine.learn(&sites[0], &labels[0]).unwrap();
            assert_eq!(
                batch[0].best().unwrap().extraction,
                solo.best().unwrap().extraction,
                "{language}"
            );
        }
    }

    #[test]
    fn table_language_learns_through_the_engine() {
        let page = |rows: &[(&str, &str)]| {
            let mut s = String::from("<h1>Stores</h1><table>");
            for (n, a) in rows {
                s.push_str(&format!("<tr><td>{n}</td><td>{a}</td></tr>"));
            }
            s + "</table>"
        };
        let site = Site::from_html(&[
            page(&[("ALPHA CO", "1 Elm"), ("BETA LLC", "2 Oak")]),
            page(&[("GAMMA INC", "3 Fir"), ("DELTA LTD", "4 Ash")]),
        ]);
        let mut labels = NodeSet::new();
        labels.extend(site.find_text("ALPHA CO"));
        labels.extend(site.find_text("DELTA LTD"));
        let engine = Engine::builder(model())
            .language(WrapperLanguage::Table)
            .config(NtwConfig::with_enumeration(Enumeration::TopDown))
            .build();
        let ranked = engine.learn(&site, &labels).unwrap();
        // The name column (two labels in different rows, same column).
        let names: NodeSet = ["ALPHA CO", "BETA LLC", "GAMMA INC", "DELTA LTD"]
            .iter()
            .flat_map(|t| site.find_text(t))
            .collect();
        let best = ranked.best().unwrap();
        assert_eq!(best.extraction, names, "rule {}", best.rule);
        assert_eq!(best.rule, "C1");
    }

    #[test]
    fn executor_and_cache_knobs_do_not_change_results() {
        let sites = [dealer_site(), dealer_site(), dealer_site()];
        let labels: Vec<NodeSet> = sites.iter().map(noisy_labels).collect();
        let labeled: Vec<(&Site, &NodeSet)> = sites.iter().zip(&labels).collect();
        let default_engine = Engine::builder(model()).build();
        assert!(default_engine.template_cache_enabled());
        let baseline = default_engine.learn_sites_labeled(&labeled).unwrap();
        for (cache, threads) in [(false, 1), (false, 3), (true, 3)] {
            let engine = Engine::builder(model())
                .executor(Executor::new(threads))
                .template_cache(cache)
                .build();
            assert_eq!(engine.template_cache_enabled(), cache);
            assert_eq!(engine.executor().threads(), threads);
            let batch = engine.learn_sites_labeled(&labeled).unwrap();
            for (a, b) in baseline.iter().zip(&batch) {
                assert_eq!(a.len(), b.len(), "cache {cache}, threads {threads}");
                for (wa, wb) in a.iter().zip(b.iter()) {
                    assert_eq!(wa.extraction, wb.extraction);
                    assert_eq!(wa.rule, wb.rule);
                    assert!((wa.score.total - wb.score.total).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn ranked_wrappers_iterate_best_first() {
        let site = dealer_site();
        let labels = noisy_labels(&site);
        let engine = Engine::builder(model()).build();
        let ranked = engine.learn(&site, &labels).unwrap();
        let totals: Vec<f64> = ranked.iter().map(|w| w.score.total).collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(ranked.iter().count(), ranked.len());
        assert_eq!(
            ranked.outcome().wrapper_space_size,
            ranked.wrapper_space_size()
        );
    }
}
