//! The error type of the [`crate::Engine`] pipeline.
//!
//! Before the Engine API, stage boundaries signalled failure with
//! `Option`s (`NtwOutcome::best`) or panics (`expect("nonempty labels")`
//! at call sites); callers could not tell "no labels" from "space
//! enumerated but empty". Every fallible Engine stage and the wrapper
//! artifact codec return [`AwError`] instead.

use std::fmt;

/// Everything that can go wrong in the Engine pipeline or the portable
/// wrapper artifact codec.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AwError {
    /// [`crate::Engine::annotate`] (or a multi-site learn) was called on
    /// an engine built without an annotator.
    NoAnnotator,
    /// The label set is empty — there is nothing to enumerate or rank.
    NoLabels,
    /// Enumeration produced no candidate wrappers.
    EmptyWrapperSpace,
    /// A rule failed to parse in its wrapper language (e.g. an xpath
    /// outside the fragment).
    InvalidRule(String),
    /// A serialized wrapper artifact is not valid JSON, is missing
    /// required fields, or carries fields of the wrong type.
    MalformedArtifact(String),
    /// A wrapper artifact was produced by an incompatible format version.
    UnsupportedVersion {
        /// The version found in the payload.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// A wrapper-language name that is none of TABLE/LR/HLRT/XPATH.
    UnknownLanguage(String),
    /// An extraction request named a site key with no wrapper in the
    /// [`crate::WrapperRegistry`].
    UnknownSite(String),
    /// An I/O failure while reading or writing an artifact (constructed
    /// by callers that touch the filesystem, e.g. the `awrap` CLI's
    /// `learn --out` / `apply --wrapper` paths).
    Io(String),
}

impl AwError {
    /// The site key the error concerns, when it carries one — lets an
    /// HTTP front end name the offending site in a structured error
    /// body without string-matching the display form.
    pub fn site(&self) -> Option<&str> {
        match self {
            AwError::UnknownSite(key) => Some(key),
            _ => None,
        }
    }

    /// Attaches the failing bundle member's site key to an
    /// artifact-shaped error, so a malformed multi-site
    /// [`crate::WrapperBundle`] payload reports *which* wrapper was bad
    /// instead of a bare variant.
    pub(crate) fn in_bundle_member(self, key: &str) -> AwError {
        match self {
            AwError::MalformedArtifact(msg) => {
                AwError::MalformedArtifact(format!("bundle member {key:?}: {msg}"))
            }
            AwError::InvalidRule(msg) => {
                AwError::InvalidRule(format!("bundle member {key:?}: {msg}"))
            }
            AwError::UnknownLanguage(name) => AwError::MalformedArtifact(format!(
                "bundle member {key:?}: unknown wrapper language {name:?}"
            )),
            other => other,
        }
    }
}

impl fmt::Display for AwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AwError::NoAnnotator => {
                f.write_str("engine has no annotator (EngineBuilder::annotator was not called)")
            }
            AwError::NoLabels => f.write_str("the label set is empty"),
            AwError::EmptyWrapperSpace => f.write_str("enumeration produced no candidate wrappers"),
            AwError::InvalidRule(msg) => write!(f, "invalid rule: {msg}"),
            AwError::MalformedArtifact(msg) => write!(f, "malformed wrapper artifact: {msg}"),
            AwError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported wrapper artifact version {found} (this build supports {supported})"
            ),
            AwError::UnknownLanguage(name) => write!(
                f,
                "unknown wrapper language {name:?} (expected table, lr, hlrt or xpath)"
            ),
            AwError::UnknownSite(key) => {
                write!(f, "no wrapper registered for site {key:?}")
            }
            AwError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for AwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AwError::NoLabels.to_string().contains("empty"));
        assert!(AwError::UnsupportedVersion {
            found: 7,
            supported: 1
        }
        .to_string()
        .contains("version 7"));
        assert!(AwError::UnknownLanguage("csv".into())
            .to_string()
            .contains("csv"));
        assert!(AwError::UnknownSite("dealer-7".into())
            .to_string()
            .contains("dealer-7"));
    }

    #[test]
    fn bundle_member_context_names_the_site_key() {
        let wrapped =
            AwError::MalformedArtifact("missing \"rule\"".into()).in_bundle_member("dealer-3");
        let AwError::MalformedArtifact(msg) = &wrapped else {
            panic!("variant changed: {wrapped:?}");
        };
        assert!(msg.contains("dealer-3"), "{msg}");
        assert!(msg.contains("missing \"rule\""), "{msg}");
        // UnknownLanguage folds into MalformedArtifact, keeping the key.
        let lang = AwError::UnknownLanguage("CSV".into()).in_bundle_member("s");
        assert!(matches!(&lang, AwError::MalformedArtifact(m) if m.contains("CSV")));
    }
}
