//! The error type of the [`crate::Engine`] pipeline.
//!
//! Before the Engine API, stage boundaries signalled failure with
//! `Option`s (`NtwOutcome::best`) or panics (`expect("nonempty labels")`
//! at call sites); callers could not tell "no labels" from "space
//! enumerated but empty". Every fallible Engine stage and the wrapper
//! artifact codec return [`AwError`] instead.

use std::fmt;

/// Everything that can go wrong in the Engine pipeline or the portable
/// wrapper artifact codec.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AwError {
    /// [`crate::Engine::annotate`] (or a multi-site learn) was called on
    /// an engine built without an annotator.
    NoAnnotator,
    /// The label set is empty — there is nothing to enumerate or rank.
    NoLabels,
    /// Enumeration produced no candidate wrappers.
    EmptyWrapperSpace,
    /// A rule failed to parse in its wrapper language (e.g. an xpath
    /// outside the fragment).
    InvalidRule(String),
    /// A serialized wrapper artifact is not valid JSON, is missing
    /// required fields, or carries fields of the wrong type.
    MalformedArtifact(String),
    /// A wrapper artifact was produced by an incompatible format version.
    UnsupportedVersion {
        /// The version found in the payload.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// A wrapper-language name that is none of TABLE/LR/HLRT/XPATH.
    UnknownLanguage(String),
    /// An extraction request named a site key with no wrapper in the
    /// [`crate::WrapperRegistry`].
    UnknownSite(String),
    /// A v3 binary bundle ended before its declared contents — the
    /// header, the site-key index, or one site's segment extends past
    /// the end of the payload. Carries the offending site key when the
    /// truncation hit a specific segment.
    TruncatedBundle {
        /// The site whose segment was cut off, when one is identifiable
        /// (`None` for header/index truncation).
        site: Option<String>,
        /// What was being read when the payload ran out.
        detail: String,
    },
    /// A v3 segment failed its checksum or did not decode as the v1
    /// wrapper payload it must contain — the binary counterpart of the
    /// v2 reader's `bundle member "key": …` errors, always naming the
    /// offending site key.
    CorruptSegment {
        /// The site key of the bad segment.
        site: String,
        /// Why the segment was rejected.
        detail: String,
    },
    /// An I/O failure while reading or writing an artifact (constructed
    /// by callers that touch the filesystem, e.g. the `awrap` CLI's
    /// `learn --out` / `apply --wrapper` paths).
    Io(String),
}

impl AwError {
    /// The site key the error concerns, when it carries one — lets an
    /// HTTP front end name the offending site in a structured error
    /// body without string-matching the display form.
    pub fn site(&self) -> Option<&str> {
        match self {
            AwError::UnknownSite(key) => Some(key),
            AwError::CorruptSegment { site, .. } => Some(site),
            AwError::TruncatedBundle {
                site: Some(site), ..
            } => Some(site),
            _ => None,
        }
    }

    /// Attaches the failing bundle member's site key to an
    /// artifact-shaped error, so a malformed multi-site
    /// [`crate::WrapperBundle`] payload reports *which* wrapper was bad
    /// instead of a bare variant.
    pub(crate) fn in_bundle_member(self, key: &str) -> AwError {
        match self {
            AwError::MalformedArtifact(msg) => {
                AwError::MalformedArtifact(format!("bundle member {key:?}: {msg}"))
            }
            AwError::InvalidRule(msg) => {
                AwError::InvalidRule(format!("bundle member {key:?}: {msg}"))
            }
            AwError::UnknownLanguage(name) => AwError::MalformedArtifact(format!(
                "bundle member {key:?}: unknown wrapper language {name:?}"
            )),
            other => other,
        }
    }
}

impl fmt::Display for AwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AwError::NoAnnotator => {
                f.write_str("engine has no annotator (EngineBuilder::annotator was not called)")
            }
            AwError::NoLabels => f.write_str("the label set is empty"),
            AwError::EmptyWrapperSpace => f.write_str("enumeration produced no candidate wrappers"),
            AwError::InvalidRule(msg) => write!(f, "invalid rule: {msg}"),
            AwError::MalformedArtifact(msg) => write!(f, "malformed wrapper artifact: {msg}"),
            AwError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported wrapper artifact version {found} (this build supports {supported})"
            ),
            AwError::UnknownLanguage(name) => write!(
                f,
                "unknown wrapper language {name:?} (expected table, lr, hlrt or xpath)"
            ),
            AwError::UnknownSite(key) => {
                write!(f, "no wrapper registered for site {key:?}")
            }
            AwError::TruncatedBundle { site, detail } => match site {
                Some(site) => write!(f, "truncated bundle: segment for site {site:?}: {detail}"),
                None => write!(f, "truncated bundle: {detail}"),
            },
            AwError::CorruptSegment { site, detail } => {
                write!(f, "corrupt bundle segment for site {site:?}: {detail}")
            }
            AwError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for AwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AwError::NoLabels.to_string().contains("empty"));
        assert!(AwError::UnsupportedVersion {
            found: 7,
            supported: 1
        }
        .to_string()
        .contains("version 7"));
        assert!(AwError::UnknownLanguage("csv".into())
            .to_string()
            .contains("csv"));
        assert!(AwError::UnknownSite("dealer-7".into())
            .to_string()
            .contains("dealer-7"));
    }

    #[test]
    fn binary_bundle_errors_name_the_offending_site() {
        let corrupt = AwError::CorruptSegment {
            site: "dealer-9".into(),
            detail: "segment checksum mismatch".into(),
        };
        assert_eq!(corrupt.site(), Some("dealer-9"));
        assert!(corrupt.to_string().contains("dealer-9"), "{corrupt}");
        assert!(corrupt.to_string().contains("checksum"), "{corrupt}");
        let cut = AwError::TruncatedBundle {
            site: Some("dealer-2".into()),
            detail: "payload ends mid-segment".into(),
        };
        assert_eq!(cut.site(), Some("dealer-2"));
        assert!(cut.to_string().contains("dealer-2"), "{cut}");
        let headless = AwError::TruncatedBundle {
            site: None,
            detail: "44-byte header".into(),
        };
        assert_eq!(headless.site(), None);
        assert!(headless.to_string().contains("header"), "{headless}");
    }

    #[test]
    fn bundle_member_context_names_the_site_key() {
        let wrapped =
            AwError::MalformedArtifact("missing \"rule\"".into()).in_bundle_member("dealer-3");
        let AwError::MalformedArtifact(msg) = &wrapped else {
            panic!("variant changed: {wrapped:?}");
        };
        assert!(msg.contains("dealer-3"), "{msg}");
        assert!(msg.contains("missing \"rule\""), "{msg}");
        // UnknownLanguage folds into MalformedArtifact, keeping the key.
        let lang = AwError::UnknownLanguage("CSV".into()).in_bundle_member("s");
        assert!(matches!(&lang, AwError::MalformedArtifact(m) if m.contains("CSV")));
    }
}
