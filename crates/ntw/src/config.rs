//! Configuration of the noise-tolerant learner.

use aw_rank::RankingMode;

/// Which enumeration algorithm drives the generate step (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enumeration {
    /// Algorithm 1 — works for any well-behaved blackbox inductor.
    BottomUp,
    /// Algorithm 2 — requires a feature-based inductor; exactly `k` calls.
    TopDown,
    /// Exhaustive 2^|L| − 1 baseline (only for tiny label sets / tests).
    Naive,
}

/// Which wrapper language to learn (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WrapperLanguage {
    /// The xpath fragment of Dalvi et al. (SIGMOD 2009).
    XPath,
    /// WIEN's LR delimiter pairs (Kushmerick et al.).
    Lr,
    /// WIEN's HLRT (head/tail + LR). Blackbox only (no feature form here),
    /// so it always enumerates with `BottomUp`.
    Hlrt,
    /// The TABLE language of Example 1, grounded in the DOM grid
    /// (`aw_induct::DomTableInductor`): `<tr>`/`<td>` coordinates.
    Table,
}

impl WrapperLanguage {
    /// Every supported language, in the paper's presentation order.
    pub const ALL: [WrapperLanguage; 4] = [
        WrapperLanguage::Table,
        WrapperLanguage::Lr,
        WrapperLanguage::Hlrt,
        WrapperLanguage::XPath,
    ];

    /// Display name used in figures and serialized artifacts.
    pub fn name(self) -> &'static str {
        match self {
            WrapperLanguage::XPath => "XPATH",
            WrapperLanguage::Lr => "LR",
            WrapperLanguage::Hlrt => "HLRT",
            WrapperLanguage::Table => "TABLE",
        }
    }
}

impl std::fmt::Display for WrapperLanguage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for WrapperLanguage {
    type Err = crate::error::AwError;

    /// Parses a language name, case-insensitively (`"xpath"`, `"XPATH"`,
    /// …) — the inverse of [`WrapperLanguage::name`], also used by the
    /// CLI `--lang` flag and the wrapper artifact codec.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "xpath" => Ok(WrapperLanguage::XPath),
            "lr" => Ok(WrapperLanguage::Lr),
            "hlrt" => Ok(WrapperLanguage::Hlrt),
            "table" => Ok(WrapperLanguage::Table),
            _ => Err(crate::error::AwError::UnknownLanguage(s.to_string())),
        }
    }
}

/// Full learner configuration.
#[derive(Clone, Debug)]
pub struct NtwConfig {
    /// Enumeration algorithm.
    pub enumeration: Enumeration,
    /// Ranking components (NTW / NTW-L / NTW-X).
    pub mode: RankingMode,
    /// Labels beyond this count are evenly subsampled for *enumeration*
    /// (ranking always uses the full label set). Bounds the `k·|L|` cost
    /// of BottomUp on label-rich sites.
    pub max_enumeration_labels: usize,
}

impl Default for NtwConfig {
    fn default() -> Self {
        NtwConfig {
            enumeration: Enumeration::TopDown,
            mode: RankingMode::Full,
            max_enumeration_labels: 32,
        }
    }
}

impl NtwConfig {
    /// Convenience: default config with a specific enumeration.
    pub fn with_enumeration(enumeration: Enumeration) -> Self {
        NtwConfig {
            enumeration,
            ..Default::default()
        }
    }

    /// Convenience: default config with a specific ranking mode.
    pub fn with_mode(mode: RankingMode) -> Self {
        NtwConfig {
            mode,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = NtwConfig::default();
        assert_eq!(c.enumeration, Enumeration::TopDown);
        assert_eq!(c.mode, RankingMode::Full);
        assert!(c.max_enumeration_labels >= 16);
    }

    #[test]
    fn language_names() {
        assert_eq!(WrapperLanguage::XPath.name(), "XPATH");
        assert_eq!(WrapperLanguage::Lr.name(), "LR");
        assert_eq!(WrapperLanguage::Hlrt.name(), "HLRT");
        assert_eq!(WrapperLanguage::Table.name(), "TABLE");
    }

    #[test]
    fn language_display_and_parse_round_trip() {
        for lang in WrapperLanguage::ALL {
            assert_eq!(lang.to_string(), lang.name());
            assert_eq!(lang.name().parse::<WrapperLanguage>().unwrap(), lang);
            assert_eq!(
                lang.name()
                    .to_ascii_lowercase()
                    .parse::<WrapperLanguage>()
                    .unwrap(),
                lang
            );
        }
        assert!("csv".parse::<WrapperLanguage>().is_err());
    }
}
