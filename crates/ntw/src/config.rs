//! Configuration of the noise-tolerant learner.

use aw_rank::RankingMode;

/// Which enumeration algorithm drives the generate step (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enumeration {
    /// Algorithm 1 — works for any well-behaved blackbox inductor.
    BottomUp,
    /// Algorithm 2 — requires a feature-based inductor; exactly `k` calls.
    TopDown,
    /// Exhaustive 2^|L| − 1 baseline (only for tiny label sets / tests).
    Naive,
}

/// Which wrapper language to learn (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WrapperLanguage {
    /// The xpath fragment of Dalvi et al. (SIGMOD 2009).
    XPath,
    /// WIEN's LR delimiter pairs (Kushmerick et al.).
    Lr,
    /// WIEN's HLRT (head/tail + LR). Blackbox only (no feature form here),
    /// so it always enumerates with `BottomUp`.
    Hlrt,
}

impl WrapperLanguage {
    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            WrapperLanguage::XPath => "XPATH",
            WrapperLanguage::Lr => "LR",
            WrapperLanguage::Hlrt => "HLRT",
        }
    }
}

/// Full learner configuration.
#[derive(Clone, Debug)]
pub struct NtwConfig {
    /// Enumeration algorithm.
    pub enumeration: Enumeration,
    /// Ranking components (NTW / NTW-L / NTW-X).
    pub mode: RankingMode,
    /// Labels beyond this count are evenly subsampled for *enumeration*
    /// (ranking always uses the full label set). Bounds the `k·|L|` cost
    /// of BottomUp on label-rich sites.
    pub max_enumeration_labels: usize,
}

impl Default for NtwConfig {
    fn default() -> Self {
        NtwConfig {
            enumeration: Enumeration::TopDown,
            mode: RankingMode::Full,
            max_enumeration_labels: 32,
        }
    }
}

impl NtwConfig {
    /// Convenience: default config with a specific enumeration.
    pub fn with_enumeration(enumeration: Enumeration) -> Self {
        NtwConfig {
            enumeration,
            ..Default::default()
        }
    }

    /// Convenience: default config with a specific ranking mode.
    pub fn with_mode(mode: RankingMode) -> Self {
        NtwConfig {
            mode,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = NtwConfig::default();
        assert_eq!(c.enumeration, Enumeration::TopDown);
        assert_eq!(c.mode, RankingMode::Full);
        assert!(c.max_enumeration_labels >= 16);
    }

    #[test]
    fn language_names() {
        assert_eq!(WrapperLanguage::XPath.name(), "XPATH");
        assert_eq!(WrapperLanguage::Lr.name(), "LR");
        assert_eq!(WrapperLanguage::Hlrt.name(), "HLRT");
    }
}
