//! Shadow relearning: the repair half of the self-healing serving loop.
//!
//! When a [`crate::health::HealthTracker`] flags a site as degraded, the
//! wrapper that was induced at deploy time no longer fits the site's
//! current template. The paper's answer to scale is that wrappers are
//! *cheap to learn* — so the [`RelearnController`] simply learns a new
//! one in the shadow of the serving path:
//!
//! 1. the retained ring of recent request pages (kept by the tracker)
//!    becomes the training corpus — no crawler round-trip needed;
//! 2. `Engine::learn` runs with the same annotator + ranking model that
//!    produced the original wrapper;
//! 3. the candidate faces an **old-vs-new differential check** on
//!    held-back pages: it is swapped in only when it strictly beats the
//!    incumbent (more non-empty pages, then more values);
//! 4. the swap goes through [`crate::WrapperRegistry::insert`] — one
//!    atomic generation bump, in-flight requests finish on the old
//!    snapshot — and the displaced wrapper is retained for
//!    [`RelearnController::rollback`].
//!
//! Scheduling is conservative: a bounded queue, at most one relearn in
//! flight per site, a per-site attempt cap with capped exponential
//! backoff. Everything it does lands in the tracker's
//! [`crate::health::HealthEvent`] journal.
//!
//! Drive it synchronously ([`RelearnController::run_pending`] — what
//! tests and single-threaded embedders use; fully deterministic) or in
//! the background ([`RelearnController::spawn_worker`] — what
//! `awrap serve --relearn` uses).

use crate::artifact::CompiledWrapper;
use crate::engine::Engine;
use crate::error::AwError;
use crate::health::{HealthEvent, HealthTracker};
use crate::service::{ExtractionService, WrapperRegistry};
use aw_induct::Site;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Scheduling knobs for the relearn loop.
#[derive(Clone, Debug)]
pub struct RelearnConfig {
    /// Maximum sites queued at once; further enqueues are dropped
    /// (default 32).
    pub queue_capacity: usize,
    /// Attempts per degradation episode before a site is parked until
    /// the next successful swap resets it (default 5).
    pub max_attempts: u32,
    /// First-failure backoff (default 1s); doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling (default 60s).
    pub backoff_cap: Duration,
    /// Minimum retained pages needed to attempt a relearn (default 3).
    pub min_pages: usize,
}

impl Default for RelearnConfig {
    fn default() -> Self {
        RelearnConfig {
            queue_capacity: 32,
            max_attempts: 5,
            backoff_base: Duration::from_secs(1),
            backoff_cap: Duration::from_secs(60),
            min_pages: 3,
        }
    }
}

/// Mutable scheduling state, all behind one lock.
#[derive(Debug, Default)]
struct RelearnState {
    /// Sites awaiting a relearn, FIFO.
    queue: VecDeque<String>,
    /// Mirror of `queue` for O(log n) dedup.
    queued: BTreeSet<String>,
    /// Sites currently being relearned (at most one pass per site).
    in_flight: BTreeSet<String>,
    /// Failed attempts per site since its last successful swap.
    attempts: BTreeMap<String, u32>,
    /// Earliest next attempt per site (exponential backoff).
    next_allowed: BTreeMap<String, Instant>,
}

/// What one [`RelearnController::run_pending`] drain did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelearnOutcome {
    /// Relearn passes that ran to completion (swapped or not).
    pub attempted: usize,
    /// Passes whose candidate won the differential check and was
    /// swapped in.
    pub swapped: usize,
    /// Sites pushed back because their backoff window is still open.
    pub deferred: usize,
}

/// The shadow relearn loop (see the module docs).
pub struct RelearnController {
    registry: Arc<WrapperRegistry>,
    health: Arc<HealthTracker>,
    engine: Engine,
    config: RelearnConfig,
    state: Mutex<RelearnState>,
    /// Displaced wrappers, for [`RelearnController::rollback`].
    previous: Mutex<BTreeMap<String, Arc<CompiledWrapper>>>,
    shutdown: AtomicBool,
}

impl fmt::Debug for RelearnController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RelearnController")
            .field("config", &self.config)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl RelearnController {
    /// A controller repairing `service`'s registry with wrappers learned
    /// by `engine` (which must carry the annotator — typically the same
    /// dictionary that produced the deployed bundle).
    ///
    /// Call **after** [`ExtractionService::with_thresholds`] (the
    /// controller shares the service's health tracker) and hand the
    /// result back via [`ExtractionService::with_relearn`].
    pub fn new(service: &ExtractionService, engine: Engine) -> RelearnController {
        RelearnController {
            registry: Arc::clone(service.registry()),
            health: Arc::clone(service.health()),
            engine,
            config: RelearnConfig::default(),
            state: Mutex::new(RelearnState::default()),
            previous: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Replaces the scheduling knobs.
    pub fn with_config(mut self, config: RelearnConfig) -> RelearnController {
        self.config = config;
        self
    }

    /// The scheduling knobs in effect.
    pub fn config(&self) -> &RelearnConfig {
        &self.config
    }

    /// Queues a site for relearning. Returns `false` (and does nothing)
    /// when the site is already queued or in flight, its attempt budget
    /// for this degradation episode is spent, or the queue is full.
    pub fn enqueue(&self, site: &str) -> bool {
        let mut state = lock(&self.state);
        if state.queued.contains(site)
            || state.in_flight.contains(site)
            || state.queue.len() >= self.config.queue_capacity
            || state.attempts.get(site).copied().unwrap_or(0) >= self.config.max_attempts
        {
            return false;
        }
        state.queue.push_back(site.to_string());
        state.queued.insert(site.to_string());
        true
    }

    /// Sites currently awaiting a relearn.
    pub fn queue_len(&self) -> usize {
        lock(&self.state).queue.len()
    }

    /// Synchronously drains the queue: every queued site whose backoff
    /// window has elapsed gets one relearn pass; the rest are pushed
    /// back. Deterministic given a deterministic request stream — this
    /// is the entry point tests and single-threaded embedders drive.
    pub fn run_pending(&self) -> RelearnOutcome {
        let mut outcome = RelearnOutcome::default();
        let now = Instant::now();
        let rounds = lock(&self.state).queue.len();
        for _ in 0..rounds {
            let site = {
                let mut state = lock(&self.state);
                let Some(site) = state.queue.pop_front() else {
                    break;
                };
                state.queued.remove(&site);
                if state.next_allowed.get(&site).is_some_and(|t| *t > now) {
                    state.queue.push_back(site.clone());
                    state.queued.insert(site);
                    outcome.deferred += 1;
                    continue;
                }
                state.in_flight.insert(site.clone());
                site
            };
            let swapped = self.relearn_site(&site);
            lock(&self.state).in_flight.remove(&site);
            outcome.attempted += 1;
            outcome.swapped += usize::from(swapped);
        }
        outcome
    }

    /// Spawns a background worker that drains the queue until
    /// [`RelearnController::stop`]. The handle joins after `stop()`.
    pub fn spawn_worker(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let controller = Arc::clone(self);
        std::thread::Builder::new()
            .name("aw-relearn".into())
            .spawn(move || {
                while !controller.shutdown.load(Ordering::Acquire) {
                    if controller.run_pending().attempted == 0 {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            })
            .expect("spawn relearn worker")
    }

    /// Asks the background worker (if any) to exit after its current
    /// pass.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Re-installs the wrapper displaced by the site's last swap.
    /// Returns the new registry generation, or `None` when there is
    /// nothing to roll back to.
    pub fn rollback(&self, site: &str) -> Option<u64> {
        let previous = lock(&self.previous).remove(site)?;
        let generation = self.registry.insert_shared(site, previous);
        self.health.reset_site(site);
        self.health.record(HealthEvent::RolledBack {
            site: site.to_string(),
            generation,
        });
        Some(generation)
    }

    /// One shadow relearn pass over a site; `true` when the candidate
    /// won the differential check and was swapped in.
    fn relearn_site(&self, site: &str) -> bool {
        let attempt = lock(&self.state).attempts.get(site).copied().unwrap_or(0) + 1;
        self.health.record(HealthEvent::RelearnStarted {
            site: site.to_string(),
            attempt,
        });
        match self.try_relearn(site) {
            Ok(Some(generation)) => {
                let mut state = lock(&self.state);
                state.attempts.remove(site);
                state.next_allowed.remove(site);
                drop(state);
                self.health.record(HealthEvent::RelearnSwapped {
                    site: site.to_string(),
                    generation,
                });
                true
            }
            Ok(None) => {
                // Differential check lost: journaled by try_relearn.
                self.note_failure(site, attempt);
                false
            }
            Err(error) => {
                self.health.record(HealthEvent::RelearnFailed {
                    site: site.to_string(),
                    attempt,
                    error: error.to_string(),
                });
                self.note_failure(site, attempt);
                false
            }
        }
    }

    /// Records a failed attempt and arms the capped exponential backoff.
    fn note_failure(&self, site: &str, attempt: u32) {
        let backoff = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.config.backoff_cap);
        let mut state = lock(&self.state);
        state.attempts.insert(site.to_string(), attempt);
        state
            .next_allowed
            .insert(site.to_string(), Instant::now() + backoff);
    }

    /// Learn + differential check + swap. `Ok(Some(generation))` on
    /// swap, `Ok(None)` when the candidate lost, `Err` when the pass
    /// could not produce a candidate at all.
    fn try_relearn(&self, site: &str) -> Result<Option<u64>, AwError> {
        let retained = self.health.retained_pages(site);
        if retained.len() < self.config.min_pages {
            return Err(AwError::Io(format!(
                "only {} retained pages (need {})",
                retained.len(),
                self.config.min_pages
            )));
        }
        // Newest quarter is held back for the differential check; the
        // rest is training material. Within the training pool, prefer
        // the pages the serving wrapper extracted *nothing* from — they
        // carry the drifted template — falling back to the whole pool
        // when drift was partial.
        let holdback_len = (retained.len() / 4).max(1);
        let (train_pool, holdback) = retained.split_at(retained.len() - holdback_len);
        let failing: Vec<&String> = train_pool
            .iter()
            .filter(|(_, empty)| *empty)
            .map(|(html, _)| html)
            .collect();
        let train: Vec<&String> = if failing.len() >= 2 {
            failing
        } else {
            train_pool.iter().map(|(html, _)| html).collect()
        };
        let training_site = Site::from_html(&train);
        let labels = self.engine.annotate(&training_site)?;
        let ranked = self.engine.learn(&training_site, &labels)?;
        let candidate = ranked.best().ok_or(AwError::EmptyWrapperSpace)?.compile();

        let incumbent = self
            .registry
            .get(site)
            .ok_or_else(|| AwError::UnknownSite(site.to_string()))?;
        // One-pass parse→index: the differential scoring below evaluates
        // both wrappers against each page's index immediately.
        let holdback_docs: Vec<_> = holdback
            .iter()
            .map(|(html, _)| aw_dom::parse_indexed(html).into_document())
            .collect();
        let new_score = score(&candidate, &holdback_docs);
        let old_score = score(&incumbent, &holdback_docs);
        if new_score <= old_score {
            self.health.record(HealthEvent::RelearnRejected {
                site: site.to_string(),
                reason: format!(
                    "candidate no better on {} held-back pages \
                     (new {}/{} values, old {}/{})",
                    holdback_docs.len(),
                    new_score.0,
                    new_score.1,
                    old_score.0,
                    old_score.1
                ),
            });
            return Ok(None);
        }

        // Swap: keep the incumbent for rollback, bump the generation,
        // reset the site's health window so the new wrapper learns a
        // fresh shape baseline.
        lock(&self.previous).insert(site.to_string(), incumbent);
        let generation = self.registry.insert(site.to_string(), candidate);
        self.health.reset_site(site);
        Ok(Some(generation))
    }
}

/// Differential score of a wrapper over held-back pages: non-empty page
/// count first, total extracted values second.
fn score(wrapper: &CompiledWrapper, docs: &[aw_dom::Document]) -> (usize, usize) {
    let mut non_empty = 0;
    let mut values = 0;
    for doc in docs {
        let extracted = wrapper.extract_values(doc);
        non_empty += usize::from(!extracted.is_empty());
        values += extracted.len();
    }
    (non_empty, values)
}
