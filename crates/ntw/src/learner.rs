//! The noise-tolerant wrapper learner — §3's generate-and-test loop.
//!
//! 1. **Generate**: enumerate the wrapper space of the noisy label set
//!    (`BottomUp`, `TopDown` or `Naive`, crate `aw-enum`).
//! 2. **Test**: score every candidate with
//!    `log P(L | X) + log P(X)` (crate `aw-rank`) and rank.
//!
//! The public entry point is [`crate::Engine`] (`engine.learn`,
//! `engine.naive`); the free functions [`learn`] and [`naive_wrapper`]
//! survive as deprecated facades over it. The generic
//! [`learn_with_feature_based`] / [`learn_with_blackbox`] remain the
//! extension points for custom inductors outside the four built-in
//! languages.

use crate::config::{Enumeration, NtwConfig, WrapperLanguage};
use crate::engine::Engine;
use aw_dom::PageNode;
use aw_enum::{bottom_up, naive, top_down, EnumerationResult};
use aw_induct::{
    DomTableInductor, FeatureBased, HlrtInductor, ItemSet, LrInductor, NodeSet, Site,
    WrapperInductor, XPathInductor,
};
use aw_rank::{RankingModel, WrapperScore};

/// One ranked candidate wrapper.
#[derive(Clone, Debug)]
pub struct LearnedWrapper {
    /// The wrapper's full extraction over the site.
    pub extraction: NodeSet,
    /// The rule in the wrapper language (display form).
    pub rule: String,
    /// The label subset that induced it.
    pub seed: NodeSet,
    /// Score breakdown.
    pub score: WrapperScore,
}

/// The learner's output: candidates ranked best-first plus cost counters.
#[derive(Clone, Debug)]
pub struct NtwOutcome {
    /// Ranked wrappers (best first; deterministic tie-break).
    pub ranked: Vec<LearnedWrapper>,
    /// Inductor calls spent during enumeration (Figures 2a/2b metric).
    pub inductor_calls: usize,
    /// Distinct wrappers enumerated (`k`).
    pub wrapper_space_size: usize,
}

impl NtwOutcome {
    /// The winning wrapper, if any label produced one.
    pub fn best(&self) -> Option<&LearnedWrapper> {
        self.ranked.first()
    }
}

/// Learns a wrapper of the given language from noisy labels.
///
/// `Hlrt` has no feature-based form here, so `TopDown` silently falls back
/// to `BottomUp` for it.
#[deprecated(note = "build an `aw_core::Engine` (via `EngineBuilder`) and call `Engine::learn`")]
pub fn learn(
    site: &Site,
    language: WrapperLanguage,
    labels: &NodeSet,
    model: &RankingModel,
    config: &NtwConfig,
) -> NtwOutcome {
    Engine::builder(model.clone())
        .language(language)
        .config(config.clone())
        .build()
        .learn(site, labels)
        .map(crate::engine::RankedWrappers::into_outcome)
        // Pre-Engine behaviour: empty labels gave an empty outcome.
        .unwrap_or_else(|_| NtwOutcome {
            ranked: Vec::new(),
            inductor_calls: 0,
            wrapper_space_size: 0,
        })
}

/// Enumerates the wrapper space for one of the built-in languages
/// (inductor choice + enumeration algorithm + label subsampling).
pub(crate) fn enumerate_language(
    site: &Site,
    language: WrapperLanguage,
    labels: &NodeSet,
    config: &NtwConfig,
) -> EnumerationResult<PageNode> {
    let seed_labels = subsample(labels, config.max_enumeration_labels);
    match language {
        WrapperLanguage::XPath => {
            enumerate_feature_based(&XPathInductor::new(site), &seed_labels, config)
        }
        WrapperLanguage::Lr => {
            enumerate_feature_based(&LrInductor::new(site), &seed_labels, config)
        }
        WrapperLanguage::Table => {
            enumerate_feature_based(&DomTableInductor::new(site), &seed_labels, config)
        }
        WrapperLanguage::Hlrt => enumerate_blackbox(&HlrtInductor::new(site), &seed_labels, config),
    }
}

fn enumerate_feature_based<I>(
    inductor: &I,
    seed_labels: &ItemSet<PageNode>,
    config: &NtwConfig,
) -> EnumerationResult<PageNode>
where
    I: FeatureBased<Item = PageNode>,
{
    match config.enumeration {
        Enumeration::TopDown => top_down(inductor, seed_labels),
        Enumeration::BottomUp => bottom_up(inductor, seed_labels),
        Enumeration::Naive => naive(inductor, seed_labels),
    }
}

fn enumerate_blackbox<I>(
    inductor: &I,
    seed_labels: &ItemSet<PageNode>,
    config: &NtwConfig,
) -> EnumerationResult<PageNode>
where
    I: WrapperInductor<Item = PageNode>,
{
    match config.enumeration {
        Enumeration::Naive => naive(inductor, seed_labels),
        _ => bottom_up(inductor, seed_labels),
    }
}

/// Learner over any feature-based inductor (supports all enumerations).
pub fn learn_with_feature_based<I>(
    inductor: &I,
    site: &Site,
    labels: &NodeSet,
    model: &RankingModel,
    config: &NtwConfig,
) -> NtwOutcome
where
    I: FeatureBased<Item = PageNode>,
{
    let seed_labels = subsample(labels, config.max_enumeration_labels);
    let space = enumerate_feature_based(inductor, &seed_labels, config);
    // The config's ranking mode is authoritative (lets one model serve all
    // three §7.3 variants).
    rank_space(space, site, labels, &model.with_mode(config.mode))
}

/// Learner over a blackbox inductor (BottomUp/Naive only; TopDown falls
/// back to BottomUp).
pub fn learn_with_blackbox<I>(
    inductor: &I,
    site: &Site,
    labels: &NodeSet,
    model: &RankingModel,
    config: &NtwConfig,
) -> NtwOutcome
where
    I: WrapperInductor<Item = PageNode>,
{
    let seed_labels = subsample(labels, config.max_enumeration_labels);
    let space = enumerate_blackbox(inductor, &seed_labels, config);
    rank_space(space, site, labels, &model.with_mode(config.mode))
}

/// The NAIVE baseline of §7.2: run the inductor directly on all labels.
#[deprecated(note = "build an `aw_core::Engine` (via `EngineBuilder`) and call `Engine::naive`")]
pub fn naive_wrapper(site: &Site, language: WrapperLanguage, labels: &NodeSet) -> LearnedWrapper {
    naive_impl(site, language, labels)
}

/// Shared implementation of the NAIVE baseline ([`Engine::naive`] and the
/// deprecated [`naive_wrapper`] facade).
pub(crate) fn naive_impl(
    site: &Site,
    language: WrapperLanguage,
    labels: &NodeSet,
) -> LearnedWrapper {
    let (extraction, rule) = match language {
        WrapperLanguage::XPath => {
            let ind = XPathInductor::new(site);
            (ind.extract(labels), ind.rule(labels))
        }
        WrapperLanguage::Lr => {
            let ind = LrInductor::new(site);
            (ind.extract(labels), ind.rule(labels))
        }
        WrapperLanguage::Hlrt => {
            let ind = HlrtInductor::new(site);
            (ind.extract(labels), ind.rule(labels))
        }
        WrapperLanguage::Table => {
            let ind = DomTableInductor::new(site);
            (ind.extract(labels), ind.rule(labels))
        }
    };
    LearnedWrapper {
        extraction,
        rule,
        seed: labels.clone(),
        score: WrapperScore {
            annotation: 0.0,
            publication: 0.0,
            features: None,
            total: 0.0,
        },
    }
}

/// Sorts ranked wrappers best-first with the framework's deterministic
/// tie-break (score, then smaller extraction, then rule string).
pub(crate) fn sort_ranked(ranked: &mut [LearnedWrapper]) {
    ranked.sort_by(|a, b| {
        b.score
            .total
            .partial_cmp(&a.score.total)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.extraction.len().cmp(&b.extraction.len()))
            .then_with(|| a.rule.cmp(&b.rule))
    });
}

pub(crate) fn rank_space(
    space: EnumerationResult<PageNode>,
    site: &Site,
    labels: &NodeSet,
    model: &RankingModel,
) -> NtwOutcome {
    let inductor_calls = space.inductor_calls;
    let wrapper_space_size = space.len();
    let mut ranked: Vec<LearnedWrapper> = space
        .wrappers
        .into_iter()
        .map(|w| {
            let score = model.score(site, labels, &w.extraction);
            LearnedWrapper {
                extraction: w.extraction,
                rule: w.rule,
                seed: w.seed,
                score,
            }
        })
        .collect();
    sort_ranked(&mut ranked);
    NtwOutcome {
        ranked,
        inductor_calls,
        wrapper_space_size,
    }
}

/// Evenly subsamples an ordered label set down to `cap` elements.
pub(crate) fn subsample(labels: &NodeSet, cap: usize) -> ItemSet<PageNode> {
    if labels.len() <= cap {
        return labels.clone();
    }
    let items: Vec<PageNode> = labels.iter().copied().collect();
    let stride = items.len() as f64 / cap as f64;
    (0..cap)
        .map(|i| items[(i as f64 * stride) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    // The deprecated facades must keep their exact pre-Engine behaviour;
    // these tests exercise the pipeline *through* them (Engine-native
    // coverage lives in `crate::engine::tests`).
    #![allow(deprecated)]

    use super::*;
    use aw_rank::{AnnotatorModel, ListFeatures, PublicationModel, RankingMode};

    /// Dealer-style site: 3 pages, names in <u>, plus footer noise.
    fn dealer_site() -> Site {
        let page = |names: &[&str]| -> String {
            let mut s = String::from("<div class='list'>");
            for (i, n) in names.iter().enumerate() {
                s.push_str(&format!(
                    "<tr><td><u>{n}</u><br>{i} Elm St.<br>CITY, ST 3870{i}<br>555-010{i}</td></tr>"
                ));
            }
            s.push_str("</div><div class='footer'>contact us</div>");
            s
        };
        Site::from_html(&[
            page(&["ALPHA FURNITURE", "BETA HOME", "GAMMA DECOR"]),
            page(&["DELTA BEDS", "EPSILON SOFAS"]),
            page(&["ZETA LIGHTS", "ETA RUGS", "THETA DESKS"]),
        ])
    }

    fn gold(site: &Site) -> NodeSet {
        // All <u> children.
        site.text_nodes()
            .iter()
            .copied()
            .filter(|&n| {
                let (doc, id) = site.resolve(n);
                doc.parent(id).and_then(|p| doc.tag(p)) == Some("u")
            })
            .collect()
    }

    fn model() -> RankingModel {
        let publication = PublicationModel::learn(&[
            ListFeatures {
                schema_size: 4.0,
                alignment: 0.0,
            },
            ListFeatures {
                schema_size: 4.0,
                alignment: 1.0,
            },
            ListFeatures {
                schema_size: 3.0,
                alignment: 0.0,
            },
        ]);
        RankingModel::new(AnnotatorModel::new(0.93, 0.5), publication)
    }

    /// Noisy labels: half the names plus one address (false positive).
    fn noisy_labels(site: &Site) -> NodeSet {
        let g: Vec<PageNode> = gold(site).into_iter().collect();
        let mut labels: NodeSet = g.iter().step_by(2).copied().collect();
        let fp = site.find_text("0 Elm St.");
        labels.extend(fp);
        labels
    }

    #[test]
    fn ntw_recovers_gold_wrapper_from_noise() {
        let site = dealer_site();
        let labels = noisy_labels(&site);
        let out = learn(
            &site,
            WrapperLanguage::XPath,
            &labels,
            &model(),
            &NtwConfig::default(),
        );
        let best = out.best().expect("candidates");
        assert_eq!(best.extraction, gold(&site), "best rule: {}", best.rule);
        assert!(out.wrapper_space_size >= 3);
    }

    #[test]
    fn naive_overgeneralizes_on_same_input() {
        let site = dealer_site();
        let labels = noisy_labels(&site);
        let naive = naive_wrapper(&site, WrapperLanguage::XPath, &labels);
        // NAIVE must cover all labels (fidelity) and therefore spill past
        // the gold set.
        assert!(labels.is_subset(&naive.extraction));
        assert!(naive.extraction.len() > gold(&site).len());
    }

    #[test]
    fn bottom_up_and_top_down_agree_on_best() {
        let site = dealer_site();
        let labels = noisy_labels(&site);
        let m = model();
        let td = learn(
            &site,
            WrapperLanguage::XPath,
            &labels,
            &m,
            &NtwConfig::with_enumeration(Enumeration::TopDown),
        );
        let bu = learn(
            &site,
            WrapperLanguage::XPath,
            &labels,
            &m,
            &NtwConfig::with_enumeration(Enumeration::BottomUp),
        );
        assert_eq!(td.best().unwrap().extraction, bu.best().unwrap().extraction);
        assert!(td.inductor_calls <= bu.inductor_calls);
    }

    #[test]
    fn lr_learner_also_recovers() {
        let site = dealer_site();
        let labels = noisy_labels(&site);
        let out = learn(
            &site,
            WrapperLanguage::Lr,
            &labels,
            &model(),
            &NtwConfig::default(),
        );
        let best = out.best().expect("candidates");
        assert_eq!(best.extraction, gold(&site), "best rule: {}", best.rule);
    }

    #[test]
    fn hlrt_falls_back_to_bottom_up() {
        let site = dealer_site();
        let labels = noisy_labels(&site);
        let out = learn(
            &site,
            WrapperLanguage::Hlrt,
            &labels,
            &model(),
            &NtwConfig::default(),
        );
        assert!(out.best().is_some());
        assert!(out.inductor_calls > 0);
    }

    #[test]
    fn annotation_only_mode_differs_from_full() {
        // With a high-recall annotator model, NTW-L alone may pick the
        // over-general wrapper; at minimum the scores must differ.
        let site = dealer_site();
        let labels = noisy_labels(&site);
        let m = model();
        let full = learn(
            &site,
            WrapperLanguage::XPath,
            &labels,
            &m,
            &NtwConfig::default(),
        );
        let l_only = learn(
            &site,
            WrapperLanguage::XPath,
            &labels,
            &m.with_mode(RankingMode::AnnotationOnly),
            &NtwConfig::with_mode(RankingMode::AnnotationOnly),
        );
        let f = full.best().unwrap();
        let l = l_only.best().unwrap();
        assert!((f.score.total - l.score.total).abs() > 1e-9 || f.extraction == l.extraction);
    }

    #[test]
    fn subsample_caps_enumeration_labels() {
        let site = dealer_site();
        let labels = gold(&site); // 8 labels
        let cfg = NtwConfig {
            max_enumeration_labels: 3,
            ..Default::default()
        };
        let out = learn(&site, WrapperLanguage::XPath, &labels, &model(), &cfg);
        // Still finds the gold wrapper from 3 seeds.
        assert_eq!(out.best().unwrap().extraction, gold(&site));
    }

    #[test]
    fn empty_labels_give_empty_outcome() {
        let site = dealer_site();
        let out = learn(
            &site,
            WrapperLanguage::XPath,
            &NodeSet::new(),
            &model(),
            &NtwConfig::default(),
        );
        assert!(out.best().is_none());
        assert_eq!(out.inductor_calls, 0);
    }
}
