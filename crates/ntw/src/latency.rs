//! Per-request latency accounting: a lock-free HDR-style histogram.
//!
//! Throughput alone hides the tail: one stalled request in ten thousand
//! is invisible in requests/sec and decisive for an interactive caller.
//! [`LatencyHistogram`] records per-request wall time in microseconds
//! into log-linear buckets (exact below 128 µs, 16 sub-buckets per
//! octave above — ≤ ~6 % relative quantization error, HDR-histogram
//! style) using only atomic increments, so the serving hot path pays a
//! handful of nanoseconds per request and readers never block writers.
//!
//! [`LatencyHistogram::snapshot`] folds the buckets into a
//! [`LatencySnapshot`] (count, p50/p90/p99, exact max) — the `latency`
//! object `GET /wrappers` serves and the `service.latency_*` fields of
//! `BENCH_xpath.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Values below this are their own bucket (exact to the microsecond).
const LINEAR_CUTOFF: u64 = 128;
/// Sub-buckets per power of two above the linear range.
const SUB_BUCKETS: u64 = 16;
/// Octaves covered above the linear range: 2^7 … 2^63.
const OCTAVES: usize = 57;
/// Total bucket count.
const BUCKETS: usize = LINEAR_CUTOFF as usize + OCTAVES * SUB_BUCKETS as usize;

/// A concurrent log-linear latency histogram (microsecond domain).
///
/// Writers call [`LatencyHistogram::record`] from any thread; readers
/// call [`LatencyHistogram::snapshot`] at any time. Both are wait-free
/// (plain atomic adds / loads), so a stats endpoint polling the
/// histogram never slows the request path.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// Maps a microsecond value to its bucket index.
fn bucket_of(us: u64) -> usize {
    if us < LINEAR_CUTOFF {
        return us as usize;
    }
    // us ≥ 128 ⇒ the high bit g is ≥ 7; within octave [2^g, 2^(g+1))
    // the top SUB_BUCKETS bits after the leading one select the
    // sub-bucket.
    let g = 63 - us.leading_zeros() as u64; // 7..=63
    let sub = (us >> (g - 4)) - SUB_BUCKETS; // 0..16
    (LINEAR_CUTOFF + (g - 7) * SUB_BUCKETS + sub) as usize
}

/// The smallest microsecond value a bucket can hold — the conservative
/// (never over-reporting) representative returned for percentiles.
fn bucket_floor(index: usize) -> u64 {
    let index = index as u64;
    if index < LINEAR_CUTOFF {
        return index;
    }
    let g = (index - LINEAR_CUTOFF) / SUB_BUCKETS + 7;
    let sub = (index - LINEAR_CUTOFF) % SUB_BUCKETS;
    (1 << g) + (sub << (g - 4))
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        // A loop (not `[ZERO; N]`) because `AtomicU64` is not `Copy`.
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("bucket count is BUCKETS");
        LatencyHistogram {
            buckets,
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one request's wall time.
    pub fn record(&self, elapsed: Duration) {
        self.record_micros(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one request's wall time, already in microseconds.
    pub fn record_micros(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Requests recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds the buckets into percentiles. Concurrent recording is
    /// fine: the snapshot is some consistent-enough interleaving (each
    /// bucket read once, count derived from the same pass).
    pub fn snapshot(&self) -> LatencySnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let max_us = self.max_us.load(Ordering::Relaxed);
        let percentile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the q-quantile (1-based, nearest-rank method).
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (index, &n) in counts.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // The top bucket's floor may undershoot the exact
                    // max we kept; never report p100 < max-bucket floor
                    // sanity by capping at the recorded max.
                    return bucket_floor(index).min(max_us);
                }
            }
            max_us
        };
        LatencySnapshot {
            count: total,
            p50_us: percentile(0.50),
            p90_us: percentile(0.90),
            p99_us: percentile(0.99),
            max_us,
        }
    }
}

/// A point-in-time folding of a [`LatencyHistogram`].
///
/// Percentiles are bucket floors (conservative within the histogram's
/// ≤ ~6 % quantization), `max_us` is exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Requests recorded.
    pub count: u64,
    /// Median request wall time, microseconds.
    pub p50_us: u64,
    /// 90th-percentile wall time, microseconds.
    pub p90_us: u64,
    /// 99th-percentile wall time, microseconds.
    pub p99_us: u64,
    /// Largest recorded wall time, microseconds (exact).
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot(), LatencySnapshot::default());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn linear_range_is_exact() {
        let h = LatencyHistogram::new();
        for us in 0..100 {
            h.record_micros(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // Nearest-rank: the k-th smallest of {0…99} is k−1.
        assert_eq!(s.p50_us, 49);
        assert_eq!(s.p90_us, 89);
        assert_eq!(s.p99_us, 98);
        assert_eq!(s.max_us, 99);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let h = LatencyHistogram::new();
        // A skewed distribution across several octaves.
        for i in 1..=1000u64 {
            h.record_micros(i * i); // 1 … 1e6 µs
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!(s.p50_us <= s.p90_us, "{s:?}");
        assert!(s.p90_us <= s.p99_us, "{s:?}");
        assert!(s.p99_us <= s.max_us, "{s:?}");
        assert_eq!(s.max_us, 1_000_000);
        // p50 of i² over 1..=1000 is 500² = 250_000; allow the ~6 %
        // bucket quantization (floors never overshoot).
        assert!(s.p50_us <= 250_000 && s.p50_us > 230_000, "{s:?}");
    }

    #[test]
    fn bucket_mapping_is_monotone_and_floors_bound() {
        let mut last = 0usize;
        for us in [0u64, 1, 127, 128, 129, 255, 256, 1 << 20, u64::MAX / 2] {
            let b = bucket_of(us);
            assert!(b >= last, "bucket_of not monotone at {us}");
            assert!(bucket_floor(b) <= us, "floor overshoots at {us}");
            last = b;
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn concurrent_recording_sums() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_micros(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 4000);
        assert_eq!(h.snapshot().max_us, 3999);
    }
}
