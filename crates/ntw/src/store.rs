//! The v3 binary bundle: a seekable on-disk artifact for web-scale
//! wrapper registries.
//!
//! A [`crate::WrapperBundle`] is one monolithic JSON blob — the right
//! shape for dozens of sites, the wrong one for the 10⁵–10⁶ sites a
//! production registry serves: loading it means parsing every site's
//! wrapper before the first request can be answered. The v3 artifact
//! (`aw-bundle-bin`) keeps each site's wrapper as an independent
//! byte range behind a sorted offset index, so serving touches only
//! the bytes for the sites requests actually name:
//!
//! * [`BundleStore`] — an open-without-loading handle: reads the
//!   header + index (a few bytes per site), then `seek`s to one
//!   segment on demand ([`BundleStore::load`]);
//! * [`BundleBinaryWriter`] — a streaming packer that never holds the
//!   whole bundle resident;
//! * [`ArtifactReader`] — the unified entry point that sniffs v1/v2
//!   JSON vs v3 binary so CLI / HTTP call sites accept any artifact
//!   generation without per-call-site format branching.
//!
//! ## Byte layout
//!
//! All integers are little-endian; checksums are 64-bit FNV-1a. Each
//! segment is a complete v1 `aw-wrapper` JSON payload
//! ([`crate::CompiledWrapper::to_json`]) — self-contained, so one
//! segment can be read, verified and parsed with no other bytes of the
//! file, and `bundle unpack` is exact.
//!
//! ```text
//! offset  size  field
//! ──────  ────  ─────────────────────────────────────────────────────
//!      0     8  magic "AWBNDLE3"
//!      8     4  format version (= 3)
//!     12     8  site count N
//!     20     8  index offset   ─┐ the index is the last thing in the
//!     28     8  index length    │ file: segments stream out first,
//!     36     8  index checksum ─┘ then the header is patched
//!     44     …  segments: N contiguous v1 JSON payloads
//!      …     …  index: N entries, site keys strictly ascending
//!               ┌ key length (4) │ key bytes │ segment offset (8)
//!               └ segment length (8) │ segment checksum (8)
//! ```
//!
//! Every byte of the file is covered by a checksum or a structural
//! check (magic, version, bounds, ordering, exact end-of-file), so any
//! single-byte corruption surfaces as a typed [`AwError`] — never a
//! panic, and for segment damage always naming the offending site key
//! ([`AwError::CorruptSegment`] / [`AwError::TruncatedBundle`]).
//!
//! ## When to prefer JSON vs binary
//!
//! v2 JSON stays the interchange format: human-readable, diffable,
//! trivially hand-edited, and the only shape `awrap learn --bundle`
//! emits. Pack to v3 (`awrap bundle pack`) when the bundle is big
//! enough that cold-start parse time or resident memory matters —
//! the `bundle_cold_start` bench metric measures exactly that gap —
//! and serve it lazily (`awrap serve --lazy --max-resident N`).

use crate::artifact::{CompiledWrapper, WrapperBundle};
use crate::error::AwError;
use std::fmt;
use std::io::{Cursor, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

/// The format name of the v3 binary bundle (the magic encodes it).
pub const BUNDLE_BIN_FORMAT: &str = "aw-bundle-bin";

/// The binary bundle schema version this build reads and writes
/// (generation 3 of the artifact family).
pub const BUNDLE_BIN_VERSION: u32 = 3;

/// The 8-byte magic every v3 binary bundle starts with — also what
/// [`ArtifactReader`] sniffs to tell binary from JSON.
pub const BUNDLE_BIN_MAGIC: [u8; 8] = *b"AWBNDLE3";

/// Fixed header size: magic (8) + version (4) + site count (8) +
/// index offset (8) + index length (8) + index checksum (8).
const HEADER_LEN: u64 = 44;

/// 64-bit FNV-1a — dependency-free, byte-order independent, and plenty
/// to turn any single-byte flip into a detectable mismatch.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn malformed(msg: impl Into<String>) -> AwError {
    AwError::MalformedArtifact(msg.into())
}

fn io_err(e: std::io::Error) -> AwError {
    AwError::Io(e.to_string())
}

/// One index entry: where a site's segment lives and what it must hash
/// to.
#[derive(Clone, Debug)]
struct IndexEntry {
    key: String,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// A streaming v3 packer: segments are written as they are appended
/// (keys must arrive in strictly ascending order, which
/// [`WrapperBundle`] iteration provides for free), the index and
/// header follow on [`BundleBinaryWriter::finish`]. Nothing but the
/// index is held in memory, so packing a 10⁵-site bundle costs a few
/// bytes per site, not the whole artifact.
pub struct BundleBinaryWriter<W: Write + Seek> {
    sink: W,
    entries: Vec<IndexEntry>,
    cursor: u64,
}

impl<W: Write + Seek> BundleBinaryWriter<W> {
    /// Starts a v3 bundle on `sink` (a placeholder header is written
    /// immediately and patched by [`BundleBinaryWriter::finish`]).
    pub fn new(mut sink: W) -> Result<BundleBinaryWriter<W>, AwError> {
        sink.write_all(&[0u8; HEADER_LEN as usize])
            .map_err(io_err)?;
        Ok(BundleBinaryWriter {
            sink,
            entries: Vec::new(),
            cursor: HEADER_LEN,
        })
    }

    /// Appends one site's wrapper as the next segment.
    pub fn append(&mut self, site: &str, wrapper: &CompiledWrapper) -> Result<(), AwError> {
        self.append_payload(site, &wrapper.to_json())
    }

    /// Appends a pre-serialized v1 `aw-wrapper` payload verbatim — the
    /// zero-copy path for repacking and for synthetic corpora that
    /// reuse one prototype payload across many sites.
    pub fn append_payload(&mut self, site: &str, v1_json: &str) -> Result<(), AwError> {
        if let Some(last) = self.entries.last() {
            if site <= last.key.as_str() {
                return Err(malformed(format!(
                    "bundle keys must be strictly ascending: {site:?} after {:?}",
                    last.key
                )));
            }
        }
        let bytes = v1_json.as_bytes();
        self.sink.write_all(bytes).map_err(io_err)?;
        self.entries.push(IndexEntry {
            key: site.to_string(),
            offset: self.cursor,
            len: bytes.len() as u64,
            checksum: fnv1a(bytes),
        });
        self.cursor += bytes.len() as u64;
        Ok(())
    }

    /// Writes the index, patches the header, flushes, and returns the
    /// sink.
    pub fn finish(mut self) -> Result<W, AwError> {
        let index_offset = self.cursor;
        let mut index: Vec<u8> = Vec::new();
        for entry in &self.entries {
            index.extend_from_slice(&(entry.key.len() as u32).to_le_bytes());
            index.extend_from_slice(entry.key.as_bytes());
            index.extend_from_slice(&entry.offset.to_le_bytes());
            index.extend_from_slice(&entry.len.to_le_bytes());
            index.extend_from_slice(&entry.checksum.to_le_bytes());
        }
        self.sink.write_all(&index).map_err(io_err)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&BUNDLE_BIN_MAGIC);
        header.extend_from_slice(&BUNDLE_BIN_VERSION.to_le_bytes());
        header.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        header.extend_from_slice(&index_offset.to_le_bytes());
        header.extend_from_slice(&(index.len() as u64).to_le_bytes());
        header.extend_from_slice(&fnv1a(&index).to_le_bytes());
        self.sink.seek(SeekFrom::Start(0)).map_err(io_err)?;
        self.sink.write_all(&header).map_err(io_err)?;
        self.sink.flush().map_err(io_err)?;
        Ok(self.sink)
    }
}

impl WrapperBundle {
    /// Serializes the bundle to its v3 binary payload (format
    /// [`BUNDLE_BIN_FORMAT`]; see the [module docs](self) for the byte
    /// layout). Segments are the members' v1 JSON artifacts, so
    /// `from_binary(to_binary())` → `to_json()` is byte-identical to
    /// the original bundle's [`WrapperBundle::to_json`].
    pub fn to_binary(&self) -> Vec<u8> {
        let mut writer = BundleBinaryWriter::new(Cursor::new(Vec::new()))
            .expect("in-memory writes are infallible");
        for (key, wrapper) in self.iter() {
            // BTreeMap iteration is strictly ascending, so append
            // cannot reject the ordering.
            writer
                .append(key, wrapper)
                .expect("in-memory writes are infallible");
        }
        writer
            .finish()
            .expect("in-memory writes are infallible")
            .into_inner()
    }

    /// Deserializes a whole v3 binary bundle eagerly — the inverse of
    /// [`WrapperBundle::to_binary`] (`awrap bundle unpack`). For lazy,
    /// per-site access open a [`BundleStore`] instead.
    pub fn from_binary(bytes: &[u8]) -> Result<WrapperBundle, AwError> {
        BundleStore::from_bytes(bytes.to_vec())?.load_all()
    }
}

/// Reader handles kept warm per file-backed store. Concurrent faults
/// beyond the pool open (and then retire) extra descriptors, so the cap
/// bounds idle descriptors, not concurrency.
const READER_POOL_CAP: usize = 8;

/// Where segment bytes come from after open-time validation.
///
/// File-backed stores hold a small pool of independent `File` handles:
/// each [`BundleStore::load`] checks one out (opening a fresh
/// descriptor when the pool runs dry), so concurrent lazy faults from
/// many connections seek-and-read in parallel instead of serializing on
/// one shared cursor. In-memory stores are a plain shared byte slice —
/// reads are pure slicing, no lock at all.
enum SegmentSource {
    File {
        path: std::path::PathBuf,
        pool: Mutex<Vec<std::fs::File>>,
    },
    Memory(Vec<u8>),
}

/// An open-without-loading handle on a v3 binary bundle.
///
/// [`BundleStore::open`] reads and verifies the header and the sorted
/// site-key index — a few dozen bytes per site — and nothing else;
/// [`BundleStore::load`] then resolves one site through the index,
/// `seek`s to its segment, verifies the segment checksum and parses
/// just that wrapper. A 10⁵-site bundle is therefore ready to serve
/// its first request in index-read time, not full-parse time (the
/// `bundle_cold_start` bench metric).
///
/// The handle is `Sync`, and concurrent [`BundleStore::load`] calls do
/// **not** serialize: a file-backed store draws an independent `File`
/// handle from a small reader pool per load (growing the pool on
/// demand, retiring descriptors beyond a small cap), and an in-memory
/// store reads by pure slicing — so simultaneous lazy faults from many
/// connections overlap instead of queuing on one shared cursor.
pub struct BundleStore {
    source: SegmentSource,
    /// Sorted by key (validated at open), so lookup is binary search.
    index: Vec<IndexEntry>,
}

impl fmt::Debug for BundleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BundleStore")
            .field("sites", &self.index.len())
            .finish_non_exhaustive()
    }
}

impl BundleStore {
    /// Opens a v3 binary bundle file, reading only its header + index.
    pub fn open(path: impl AsRef<Path>) -> Result<BundleStore, AwError> {
        let path = path.as_ref();
        let mut file = std::fs::File::open(path)
            .map_err(|e| AwError::Io(format!("{}: {e}", path.display())))?;
        let index = BundleStore::parse_index(&mut file)?;
        Ok(BundleStore {
            // The open-time handle seeds the reader pool.
            source: SegmentSource::File {
                path: path.to_path_buf(),
                pool: Mutex::new(vec![file]),
            },
            index,
        })
    }

    /// Opens a v3 binary bundle held in memory (an HTTP upload, a
    /// packed `Vec<u8>`); same validation as [`BundleStore::open`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<BundleStore, AwError> {
        let index = BundleStore::parse_index(&mut Cursor::new(&bytes))?;
        Ok(BundleStore {
            source: SegmentSource::Memory(bytes),
            index,
        })
    }

    /// Validates header + index through any seekable source, returning
    /// the parsed index (shared by the file and in-memory constructors).
    fn parse_index(source: &mut (impl Read + Seek)) -> Result<Vec<IndexEntry>, AwError> {
        let total = source.seek(SeekFrom::End(0)).map_err(io_err)?;
        if total < HEADER_LEN {
            return Err(AwError::TruncatedBundle {
                site: None,
                detail: format!("payload is {total} bytes, the header alone is {HEADER_LEN}"),
            });
        }
        source.seek(SeekFrom::Start(0)).map_err(io_err)?;
        let mut header = [0u8; HEADER_LEN as usize];
        source.read_exact(&mut header).map_err(io_err)?;
        if header[..8] != BUNDLE_BIN_MAGIC {
            return Err(malformed(format!(
                "not an {BUNDLE_BIN_FORMAT} payload (bad magic)"
            )));
        }
        let le_u32 = |range: std::ops::Range<usize>| {
            u32::from_le_bytes(header[range].try_into().expect("4-byte slice"))
        };
        let le_u64 = |range: std::ops::Range<usize>| {
            u64::from_le_bytes(header[range].try_into().expect("8-byte slice"))
        };
        let version = le_u32(8..12);
        if version != BUNDLE_BIN_VERSION {
            return Err(AwError::UnsupportedVersion {
                found: version,
                supported: BUNDLE_BIN_VERSION,
            });
        }
        let count = le_u64(12..20);
        let index_offset = le_u64(20..28);
        let index_len = le_u64(28..36);
        let index_checksum = le_u64(36..44);
        if index_offset < HEADER_LEN {
            return Err(malformed("index offset points into the header"));
        }
        let index_end = index_offset
            .checked_add(index_len)
            .ok_or_else(|| malformed("index extent overflows"))?;
        if index_end > total {
            return Err(AwError::TruncatedBundle {
                site: None,
                detail: format!(
                    "index is declared to end at byte {index_end} but the payload has {total}"
                ),
            });
        }
        if index_end != total {
            return Err(malformed("trailing bytes after the index"));
        }
        source.seek(SeekFrom::Start(index_offset)).map_err(io_err)?;
        let mut index_bytes = vec![0u8; index_len as usize];
        source.read_exact(&mut index_bytes).map_err(io_err)?;
        if fnv1a(&index_bytes) != index_checksum {
            return Err(malformed("index checksum mismatch"));
        }

        let mut index: Vec<IndexEntry> = Vec::new();
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], AwError> {
            let end = pos
                .checked_add(n)
                .filter(|&end| end <= index_bytes.len())
                .ok_or_else(|| malformed("index entry extends past the index"))?;
            let slice = &index_bytes[*pos..end];
            *pos = end;
            Ok(slice)
        };
        for _ in 0..count {
            let key_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
            let key = std::str::from_utf8(take(&mut pos, key_len as usize)?)
                .map_err(|_| malformed("index key is not UTF-8"))?
                .to_string();
            let offset = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
            if let Some(last) = index.last() {
                if key <= last.key {
                    return Err(malformed(format!(
                        "index keys are not strictly ascending: {key:?} after {:?}",
                        last.key
                    )));
                }
            }
            let segment_end = offset
                .checked_add(len)
                .ok_or_else(|| malformed(format!("segment extent overflows for site {key:?}")))?;
            if offset < HEADER_LEN || segment_end > index_offset {
                return Err(malformed(format!(
                    "segment for site {key:?} lies outside the segment region"
                )));
            }
            index.push(IndexEntry {
                key,
                offset,
                len,
                checksum,
            });
        }
        if pos != index_bytes.len() {
            return Err(malformed("index length does not match its entry count"));
        }
        Ok(index)
    }

    /// Number of sites in the bundle.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the bundle holds no site.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True when the bundle indexes `site` (no segment I/O).
    pub fn contains(&self, site: &str) -> bool {
        self.find(site).is_some()
    }

    /// The indexed site keys, ascending (no segment I/O).
    pub fn site_keys(&self) -> impl Iterator<Item = &str> {
        self.index.iter().map(|e| e.key.as_str())
    }

    /// `(site key, segment byte length)` pairs, ascending by key — the
    /// data behind `awrap bundle inspect` (no segment I/O).
    pub fn segments(&self) -> impl Iterator<Item = (&str, u64)> {
        self.index.iter().map(|e| (e.key.as_str(), e.len))
    }

    fn find(&self, site: &str) -> Option<&IndexEntry> {
        self.index
            .binary_search_by(|e| e.key.as_str().cmp(site))
            .ok()
            .map(|i| &self.index[i])
    }

    /// Loads one site's wrapper: seek to its segment, verify the
    /// checksum, parse the v1 payload. `Ok(None)` when the bundle does
    /// not index `site`; [`AwError::CorruptSegment`] /
    /// [`AwError::TruncatedBundle`] (naming the site) when the segment
    /// bytes are damaged.
    pub fn load(&self, site: &str) -> Result<Option<CompiledWrapper>, AwError> {
        let Some(entry) = self.find(site) else {
            return Ok(None);
        };
        let bytes = self.read_segment(entry)?;
        let payload = std::str::from_utf8(&bytes).map_err(|_| AwError::CorruptSegment {
            site: entry.key.clone(),
            detail: "segment is not UTF-8".into(),
        })?;
        let wrapper = CompiledWrapper::from_json(payload).map_err(|e| AwError::CorruptSegment {
            site: entry.key.clone(),
            detail: e.to_string(),
        })?;
        Ok(Some(wrapper))
    }

    fn read_segment(&self, entry: &IndexEntry) -> Result<Vec<u8>, AwError> {
        let truncated = |detail: String| AwError::TruncatedBundle {
            site: Some(entry.key.clone()),
            detail,
        };
        let buf = match &self.source {
            SegmentSource::Memory(bytes) => {
                // Extents were bounds-checked at open; a second check
                // keeps a logic slip a typed error, not a panic.
                let end = entry.offset.checked_add(entry.len);
                match end.filter(|&end| end <= bytes.len() as u64) {
                    Some(end) => bytes[entry.offset as usize..end as usize].to_vec(),
                    None => {
                        return Err(truncated(format!(
                            "payload ends mid-segment: {} bytes held, segment ends at {:?}",
                            bytes.len(),
                            end
                        )))
                    }
                }
            }
            SegmentSource::File { path, pool } => {
                // Check a reader handle out of the pool — or open a
                // fresh descriptor when every pooled one is in use, so
                // concurrent faults never wait on each other's seeks.
                let pooled = {
                    let mut pool = pool
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    pool.pop()
                };
                let mut file = match pooled {
                    Some(file) => file,
                    None => std::fs::File::open(path)
                        .map_err(|e| AwError::Io(format!("{}: {e}", path.display())))?,
                };
                let mut buf = vec![0u8; entry.len as usize];
                file.seek(SeekFrom::Start(entry.offset)).map_err(io_err)?;
                file.read_exact(&mut buf)
                    .map_err(|e| truncated(format!("payload ends mid-segment: {e}")))?;
                // Check the handle back in; beyond the cap it is simply
                // closed (the pool bounds idle descriptors).
                let mut pool = pool
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if pool.len() < READER_POOL_CAP {
                    pool.push(file);
                }
                buf
            }
        };
        if fnv1a(&buf) != entry.checksum {
            return Err(AwError::CorruptSegment {
                site: entry.key.clone(),
                detail: "segment checksum mismatch".into(),
            });
        }
        Ok(buf)
    }

    /// Loads every segment eagerly into a [`WrapperBundle`] — the
    /// unpack path, and how an eager (non-`--lazy`) server consumes a
    /// v3 artifact.
    pub fn load_all(&self) -> Result<WrapperBundle, AwError> {
        let keys: Vec<String> = self.index.iter().map(|e| e.key.clone()).collect();
        let mut bundle = WrapperBundle::new();
        for key in keys {
            let wrapper = self.load(&key)?.expect("indexed key loads");
            bundle.insert(key, wrapper);
        }
        Ok(bundle)
    }
}

/// Any artifact generation, loaded through [`ArtifactReader`]: either
/// fully resident (v1/v2 JSON, parsed eagerly) or a lazy v3 handle.
#[derive(Debug)]
pub enum LoadedArtifact {
    /// A v1 single-wrapper or v2 bundle JSON payload, parsed whole.
    Resident(WrapperBundle),
    /// A v3 binary bundle, opened without loading any segment.
    Lazy(BundleStore),
}

impl LoadedArtifact {
    /// Number of sites in the artifact (no segment I/O for v3).
    pub fn len(&self) -> usize {
        match self {
            LoadedArtifact::Resident(bundle) => bundle.len(),
            LoadedArtifact::Lazy(store) => store.len(),
        }
    }

    /// True when the artifact holds no site.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The site keys, ascending (no segment I/O for v3).
    pub fn site_keys(&self) -> Vec<String> {
        match self {
            LoadedArtifact::Resident(bundle) => bundle.site_keys().map(str::to_string).collect(),
            LoadedArtifact::Lazy(store) => store.site_keys().map(str::to_string).collect(),
        }
    }

    /// Forces the artifact fully resident (loading every v3 segment
    /// when lazy) — for consumers that need the whole bundle, e.g. an
    /// eager registry load or `bundle unpack`.
    pub fn into_bundle(self) -> Result<WrapperBundle, AwError> {
        match self {
            LoadedArtifact::Resident(bundle) => Ok(bundle),
            LoadedArtifact::Lazy(store) => store.load_all(),
        }
    }
}

/// The unified artifact loading entry point: sniffs the generation
/// (v1/v2 JSON vs v3 binary via [`BUNDLE_BIN_MAGIC`]) so `awrap apply`,
/// `awrap serve` and `POST /wrappers` accept any of them without
/// per-call-site format branching. Prefer this over calling
/// [`WrapperBundle::from_json`] directly at I/O boundaries.
#[derive(Debug)]
pub struct ArtifactReader;

impl ArtifactReader {
    /// True when `bytes` starts with the v3 binary magic.
    pub fn is_binary(bytes: &[u8]) -> bool {
        bytes.starts_with(&BUNDLE_BIN_MAGIC)
    }

    /// Reads an artifact of any generation **eagerly** from bytes —
    /// the hot-swap upload path (`POST /wrappers`), where the whole
    /// payload is in memory anyway.
    pub fn read_bytes(bytes: &[u8]) -> Result<WrapperBundle, AwError> {
        if ArtifactReader::is_binary(bytes) {
            return WrapperBundle::from_binary(bytes);
        }
        let text = std::str::from_utf8(bytes)
            .map_err(|_| malformed("artifact is neither v3 binary nor UTF-8 JSON"))?;
        WrapperBundle::from_json(text)
    }

    /// Opens an artifact file of any generation, sniffing only its
    /// first bytes: a v3 bundle comes back as a lazy
    /// [`LoadedArtifact::Lazy`] handle (header + index read, no
    /// segments), JSON generations parse eagerly.
    pub fn open(path: impl AsRef<Path>) -> Result<LoadedArtifact, AwError> {
        let path = path.as_ref();
        let io = |e: std::io::Error| AwError::Io(format!("{}: {e}", path.display()));
        let mut file = std::fs::File::open(path).map_err(io)?;
        let mut magic = [0u8; 8];
        let mut got = 0usize;
        while got < magic.len() {
            match file.read(&mut magic[got..]).map_err(io)? {
                0 => break,
                n => got += n,
            }
        }
        if magic[..got] == BUNDLE_BIN_MAGIC {
            drop(file);
            return Ok(LoadedArtifact::Lazy(BundleStore::open(path)?));
        }
        let mut text = String::new();
        text.push_str(
            std::str::from_utf8(&magic[..got])
                .map_err(|_| malformed("artifact is neither v3 binary nor UTF-8 JSON"))?,
        );
        file.read_to_string(&mut text).map_err(io)?;
        Ok(LoadedArtifact::Resident(WrapperBundle::from_json(&text)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WrapperLanguage;
    use crate::rule::LearnedRule;
    use aw_induct::{NodeSet, Site};

    fn training_site() -> Site {
        let page = |rows: &[(&str, &str)]| {
            let mut s = String::from("<table class='stores'>");
            for (n, a) in rows {
                s.push_str(&format!("<tr><td><b>{n}</b></td><td>{a}</td></tr>"));
            }
            s + "</table>"
        };
        Site::from_html(&[
            page(&[("ALPHA CO", "1 Elm"), ("BETA LLC", "2 Oak")]),
            page(&[("GAMMA INC", "3 Fir"), ("DELTA LTD", "4 Ash")]),
        ])
    }

    fn wrapper(language: WrapperLanguage) -> CompiledWrapper {
        let site = training_site();
        let mut labels = NodeSet::new();
        labels.extend(site.find_text("ALPHA CO"));
        labels.extend(site.find_text("DELTA LTD"));
        CompiledWrapper::from_rule(LearnedRule::learn(&site, language, &labels))
    }

    fn sample_bundle() -> WrapperBundle {
        let mut bundle = WrapperBundle::new();
        for language in WrapperLanguage::ALL {
            bundle.insert(format!("site-{language}"), wrapper(language));
        }
        bundle
    }

    #[test]
    fn binary_round_trip_is_byte_identical() {
        let bundle = sample_bundle();
        let bytes = bundle.to_binary();
        assert_eq!(bytes[..8], BUNDLE_BIN_MAGIC);
        let restored = WrapperBundle::from_binary(&bytes).unwrap();
        assert_eq!(restored.to_json(), bundle.to_json());
        // Packing is deterministic.
        assert_eq!(restored.to_binary(), bytes);
    }

    #[test]
    fn store_opens_lazily_and_loads_per_site() {
        let bundle = sample_bundle();
        let store = BundleStore::from_bytes(bundle.to_binary()).unwrap();
        assert_eq!(store.len(), 4);
        assert!(store.contains("site-XPATH"));
        assert!(!store.contains("site-CSV"));
        assert!(store.load("missing").unwrap().is_none());
        let page = aw_dom::parse(
            "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr></table>",
        );
        for (key, expected) in bundle.iter() {
            let loaded = store.load(key).unwrap().expect("indexed");
            assert_eq!(loaded.rule(), expected.rule(), "{key}");
            assert_eq!(loaded.extract(&page), expected.extract(&page), "{key}");
        }
        let segment_total: u64 = store.segments().map(|(_, len)| len).sum();
        assert!(segment_total > 0);
    }

    #[test]
    fn empty_bundles_pack_and_open() {
        let bytes = WrapperBundle::new().to_binary();
        let store = BundleStore::from_bytes(bytes).unwrap();
        assert!(store.is_empty());
        assert!(store.load_all().unwrap().is_empty());
    }

    #[test]
    fn writer_rejects_unsorted_keys() {
        let mut writer = BundleBinaryWriter::new(Cursor::new(Vec::new())).unwrap();
        writer.append_payload("b", "{}").unwrap();
        let err = writer.append_payload("a", "{}").unwrap_err();
        assert!(matches!(err, AwError::MalformedArtifact(_)), "{err:?}");
        let dup = {
            let mut writer = BundleBinaryWriter::new(Cursor::new(Vec::new())).unwrap();
            writer.append_payload("a", "{}").unwrap();
            writer.append_payload("a", "{}").unwrap_err()
        };
        assert!(matches!(dup, AwError::MalformedArtifact(_)), "{dup:?}");
    }

    #[test]
    fn reader_sniffs_generations() {
        let bundle = sample_bundle();
        // v3 binary bytes.
        let from_binary = ArtifactReader::read_bytes(&bundle.to_binary()).unwrap();
        assert_eq!(from_binary.to_json(), bundle.to_json());
        // v2 JSON bytes.
        let from_v2 = ArtifactReader::read_bytes(bundle.to_json().as_bytes()).unwrap();
        assert_eq!(from_v2.to_json(), bundle.to_json());
        // v1 single-wrapper JSON bytes (loads under the compat key).
        let single = wrapper(WrapperLanguage::XPath);
        let from_v1 = ArtifactReader::read_bytes(single.to_json().as_bytes()).unwrap();
        assert_eq!(
            from_v1.site_keys().collect::<Vec<_>>(),
            [crate::artifact::V1_SITE_KEY]
        );
        // Garbage is a typed error.
        assert!(ArtifactReader::read_bytes(&[0xFF, 0xFE, 0x00]).is_err());
        assert!(ArtifactReader::read_bytes(b"not json").is_err());
    }

    #[test]
    fn concurrent_faults_through_the_reader_pool_are_correct() {
        // Many threads fault different (and the same) sites out of one
        // file-backed store at once. With the single-cursor design this
        // serialized; with the reader pool it overlaps — either way
        // every load must come back intact (each handle has its own
        // file position, so no interleaving can mix two segments).
        let bundle = sample_bundle();
        let dir = std::env::temp_dir().join(format!("aw-store-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.awb");
        std::fs::write(&path, bundle.to_binary()).unwrap();
        let store = std::sync::Arc::new(BundleStore::open(&path).unwrap());
        let expected: Vec<(String, String)> = bundle
            .iter()
            .map(|(key, wrapper)| (key.to_string(), wrapper.rule().to_string()))
            .collect();
        let threads: Vec<_> = (0..16)
            .map(|t| {
                let store = std::sync::Arc::clone(&store);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for round in 0..20 {
                        let (key, rule) = &expected[(t + round) % expected.len()];
                        let loaded = store.load(key).unwrap().expect("indexed key loads");
                        assert_eq!(loaded.rule().to_string(), *rule, "{key}");
                    }
                    // Missing keys stay a clean miss under concurrency.
                    assert!(store.load("zz-missing").unwrap().is_none());
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_and_bad_magic_are_typed() {
        let mut bytes = sample_bundle().to_binary();
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 9;
        assert_eq!(
            BundleStore::from_bytes(wrong_version).unwrap_err(),
            AwError::UnsupportedVersion {
                found: 9,
                supported: BUNDLE_BIN_VERSION
            }
        );
        bytes[0] = b'X';
        assert!(matches!(
            BundleStore::from_bytes(bytes).unwrap_err(),
            AwError::MalformedArtifact(_)
        ));
    }
}
