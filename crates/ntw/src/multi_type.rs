//! Multi-type extraction — Appendix A.
//!
//! A multi-type wrapper extracts *records* (e.g. `(name, zipcode)`),
//! assembling them from the interleaved per-type extractions. The
//! noise-tolerant extension:
//!
//! * **Enumeration** runs per type (labels carry their type, §A.1);
//! * **Ranking** multiplies the per-type annotation terms (each an
//!   Eq. (4) instance) and computes `P(X)` on segments bounded by type-0
//!   nodes, with the constraint that same-type nodes align with each other
//!   (the pinned edit distance of `aw-align`);
//! * **Assembly** pairs each type-0 node with the following type-1 node;
//!   a page where interleaving fails produces no records — the failure
//!   mode that makes NAIVE collapse in Figure 3(a).

use crate::config::NtwConfig;
use crate::learner::subsample;
use aw_dom::PageNode;
use aw_enum::top_down;
use aw_induct::{NodeSet, Site, WrapperInductor, XPathInductor};
use aw_rank::{list_features_pinned, segment_site_typed, AnnotatorModel, PublicationModel};

/// An assembled record: one node per type (type 1 may be missing when the
/// page interleaving tolerates it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The type-0 node (e.g. the business name).
    pub primary: PageNode,
    /// The type-1 node (e.g. the zipcode line), when assembled.
    pub secondary: Option<PageNode>,
}

/// A scored multi-type candidate.
#[derive(Clone, Debug)]
pub struct MultiTypeWrapper {
    /// Extraction per type.
    pub extractions: Vec<NodeSet>,
    /// Display rules per type.
    pub rules: Vec<String>,
    /// Assembled records (empty on pages where assembly failed).
    pub records: Vec<Record>,
    /// Combined log score.
    pub score: f64,
}

/// The multi-type learner's output.
#[derive(Clone, Debug)]
pub struct MultiTypeOutcome {
    /// Candidates ranked best-first.
    pub ranked: Vec<MultiTypeWrapper>,
    /// Total inductor calls across both types' enumerations.
    pub inductor_calls: usize,
}

impl MultiTypeOutcome {
    /// The winning candidate.
    pub fn best(&self) -> Option<&MultiTypeWrapper> {
        self.ranked.first()
    }
}

/// The multi-type ranking model: one annotator per type plus the shared
/// publication model.
#[derive(Clone, Debug)]
pub struct MultiTypeModel {
    /// Per-type annotator characteristics.
    pub annotators: Vec<AnnotatorModel>,
    /// Publication model (learned on gold record segments).
    pub publication: PublicationModel,
    /// Indel penalty for typed nodes in the pinned alignment.
    pub pin_indel_cost: usize,
}

/// Learns a two-type xpath wrapper from per-type noisy labels.
pub fn learn_multi_type(
    site: &Site,
    labels: &[NodeSet; 2],
    model: &MultiTypeModel,
    config: &NtwConfig,
) -> MultiTypeOutcome {
    assert_eq!(model.annotators.len(), 2, "two annotators required");
    let inductor = XPathInductor::new(site);
    let mut calls = 0;
    // Per-type wrapper spaces (type info is simply separate label sets
    // fed to separate enumeration runs).
    let spaces: Vec<Vec<NodeSet>> = labels
        .iter()
        .map(|l| {
            let space = top_down(&inductor, &subsample(l, config.max_enumeration_labels));
            calls += space.inductor_calls;
            space.wrappers.into_iter().map(|w| w.extraction).collect()
        })
        .collect();
    let rules: Vec<Vec<String>> = spaces
        .iter()
        .map(|sp| sp.iter().map(|x| inductor.rule(x)).collect())
        .collect();

    // Score every pair.
    let mut ranked: Vec<MultiTypeWrapper> = Vec::new();
    for (i, x0) in spaces[0].iter().enumerate() {
        for (j, x1) in spaces[1].iter().enumerate() {
            let score = score_pair(site, labels, [x0, x1], model);
            let records = assemble_records(site, x0, x1);
            ranked.push(MultiTypeWrapper {
                extractions: vec![x0.clone(), x1.clone()],
                rules: vec![rules[0][i].clone(), rules[1][j].clone()],
                records,
                score,
            });
        }
    }
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.rules.cmp(&b.rules))
    });
    MultiTypeOutcome {
        ranked,
        inductor_calls: calls,
    }
}

fn score_pair(site: &Site, labels: &[NodeSet; 2], x: [&NodeSet; 2], model: &MultiTypeModel) -> f64 {
    // Annotation terms multiply (sum in log space).
    let mut total = 0.0;
    for t in 0..2 {
        let hits = x[t].iter().filter(|n| labels[t].contains(n)).count();
        let unlabeled = x[t].len() - hits;
        total += model.annotators[t].log_likelihood(hits, unlabeled);
    }
    // Publication term on typed segments with the alignment constraint.
    let segments = segment_site_typed(site, &[x[0].clone(), x[1].clone()]);
    let features = list_features_pinned(&segments, model.pin_indel_cost);
    total += model.publication.log_prob(features);
    total
}

/// Assembles records page by page: each type-0 node pairs with the unique
/// type-1 node before the next type-0 node. A page fails (contributes no
/// records) if any gap contains more than one type-1 node, or if the page
/// has type-1 nodes but no type-0 node at all — the multi-type wrapper
/// "produces empty results on a page if it cannot assemble records
/// successfully" (§A.2).
pub fn assemble_records(site: &Site, x0: &NodeSet, x1: &NodeSet) -> Vec<Record> {
    let mut out = Vec::new();
    for p in 0..site.page_count() as u32 {
        // Document-order stream of typed nodes on this page.
        let doc = site.page(p);
        let mut stream: Vec<(PageNode, u8)> = Vec::new();
        for id in doc.preorder_all() {
            let pn = PageNode::new(p, id);
            if x0.contains(&pn) {
                stream.push((pn, 0));
            } else if x1.contains(&pn) {
                stream.push((pn, 1));
            }
        }
        if stream.is_empty() {
            continue;
        }
        let mut page_records: Vec<Record> = Vec::new();
        let mut ok = true;
        let mut current: Option<Record> = None;
        for (node, ty) in stream {
            match ty {
                0 => {
                    if let Some(r) = current.take() {
                        page_records.push(r);
                    }
                    current = Some(Record {
                        primary: node,
                        secondary: None,
                    });
                }
                _ => match &mut current {
                    Some(r) if r.secondary.is_none() => r.secondary = Some(node),
                    // Second zip in the same gap, or zip before any name:
                    // interleaving failure.
                    _ => {
                        ok = false;
                        break;
                    }
                },
            }
        }
        if let Some(r) = current.take() {
            page_records.push(r);
        }
        if ok {
            out.extend(page_records);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NtwConfig;
    use aw_rank::ListFeatures;

    /// Two pages of (name, street, zip-line, phone) records; names in <b>,
    /// zip lines bare.
    fn site() -> Site {
        let rec = |n: &str, i: usize| {
            format!("<tr><td><b>{n}</b></td><td>{i} Oak</td><td>CITY, ST 9400{i}</td><td>555-{i}</td></tr>")
        };
        Site::from_html(&[
            format!(
                "<table>{}{}{}</table>",
                rec("ALPHA", 1),
                rec("BETA", 2),
                rec("GAMMA", 3)
            ),
            format!("<table>{}{}</table>", rec("DELTA", 4), rec("EPSILON", 5)),
        ])
    }

    fn gold(site: &Site) -> [NodeSet; 2] {
        let names: NodeSet = site
            .text_nodes()
            .iter()
            .copied()
            .filter(|&n| {
                let (doc, id) = site.resolve(n);
                doc.parent(id).and_then(|p| doc.tag(p)) == Some("b")
            })
            .collect();
        let zips: NodeSet = site
            .text_nodes()
            .iter()
            .copied()
            .filter(|&n| site.text_of(n).is_some_and(aw_annotate::contains_zipcode))
            .collect();
        [names, zips]
    }

    fn model() -> MultiTypeModel {
        MultiTypeModel {
            annotators: vec![
                AnnotatorModel::new(0.93, 0.5),
                AnnotatorModel::new(0.9, 0.8),
            ],
            publication: PublicationModel::learn(&[
                ListFeatures {
                    schema_size: 4.0,
                    alignment: 0.0,
                },
                ListFeatures {
                    schema_size: 4.0,
                    alignment: 1.0,
                },
            ]),
            pin_indel_cost: 3,
        }
    }

    #[test]
    fn recovers_both_types_from_noisy_labels() {
        let s = site();
        let [names, zips] = gold(&s);
        // Noisy: drop one name, add a street as fake name; zips clean.
        let mut noisy_names: NodeSet = names.iter().skip(1).copied().collect();
        noisy_names.extend(s.find_text("1 Oak"));
        let out = learn_multi_type(
            &s,
            &[noisy_names, zips.clone()],
            &model(),
            &NtwConfig::default(),
        );
        let best = out.best().expect("candidates");
        assert_eq!(best.extractions[0], names, "names: {:?}", best.rules);
        assert_eq!(best.extractions[1], zips, "zips: {:?}", best.rules);
        assert_eq!(best.records.len(), 5);
        assert!(best.records.iter().all(|r| r.secondary.is_some()));
        assert!(out.inductor_calls > 0);
    }

    #[test]
    fn assembly_pairs_in_document_order() {
        let s = site();
        let [names, zips] = gold(&s);
        let records = assemble_records(&s, &names, &zips);
        assert_eq!(records.len(), 5);
        for r in &records {
            let name = s.text_of(r.primary).unwrap();
            let zip = s.text_of(r.secondary.unwrap()).unwrap();
            // ALPHA pairs with 94001, BETA with 94002, …
            let idx = ["ALPHA", "BETA", "GAMMA", "DELTA", "EPSILON"]
                .iter()
                .position(|x| *x == name)
                .unwrap();
            assert!(zip.ends_with(&format!("{}", 94001 + idx)), "{name} ↔ {zip}");
        }
    }

    #[test]
    fn assembly_fails_on_bad_interleaving() {
        let s = site();
        let [names, zips] = gold(&s);
        // Use every text node as "zips": multiple per gap → pages fail.
        let all: NodeSet = s.text_nodes().iter().copied().collect();
        let records = assemble_records(&s, &names, &all);
        assert!(records.is_empty());
        // Zip-before-name also fails.
        let records2 = assemble_records(&s, &zips, &names);
        // Here type-0 = zips; names come BEFORE zips in each row, so the
        // first name precedes the first zip → failure on both pages.
        assert!(records2.is_empty());
    }

    #[test]
    fn missing_secondary_is_tolerated() {
        // One record has no zip line: assembly still succeeds with None.
        let s = Site::from_html(&["<tr><td><b>ALPHA</b></td><td>CITY, ST 94001</td></tr>\
             <tr><td><b>BETA</b></td></tr>"]);
        let [names, zips] = gold(&s);
        let records = assemble_records(&s, &names, &zips);
        assert_eq!(records.len(), 2);
        assert!(records[0].secondary.is_some());
        assert!(records[1].secondary.is_none());
    }
}
