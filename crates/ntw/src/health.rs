//! Extraction-health accounting: the detect half of the self-healing
//! serving loop.
//!
//! A wrapper that was correct at learn time silently rots when its site
//! drifts — requests keep succeeding at the HTTP layer while extraction
//! goes empty or wrong. [`HealthTracker`] watches the signals that make
//! such rot observable *without* gold labels:
//!
//! * **empty-extraction rate** over a sliding window of recent pages —
//!   the blunt instrument that catches template breaks;
//! * **value-shape drift** against a baseline learned from the site's
//!   own first healthy pages (values per page, characters per value) —
//!   catches wrappers that still match *something*, but the wrong thing;
//! * **template-cache replay-miss spikes** — structurally novel pages
//!   arriving faster than the cache can absorb them mean the site's
//!   template population changed;
//! * **page errors** — unparseable request pages count against the
//!   window rather than failing the request.
//!
//! The tracker also retains a bounded ring of recent raw request pages
//! per site: the training corpus a [`crate::relearn::RelearnController`]
//! re-runs `Engine::learn` over when a site degrades. Every state
//! transition lands in a [`HealthEvent`] journal.
//!
//! All accounting is deterministic for a deterministic request stream:
//! counters derive from response values only, never from timing.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Mutex;

/// Tunable degradation thresholds (see field docs for defaults).
#[derive(Clone, Debug)]
pub struct HealthThresholds {
    /// Sliding window length, in pages (default 16).
    pub window: usize,
    /// Minimum pages observed before the window is judged (default 4).
    pub min_window: usize,
    /// Degrade when the window's empty-or-error page fraction exceeds
    /// this (default 0.5).
    pub max_empty_rate: f64,
    /// Degrade when the window's template-cache replay-miss fraction
    /// exceeds this (default 0.9; ≥ 1.0 disables the trigger — the
    /// signal still reports).
    pub max_miss_rate: f64,
    /// Degrade when the window's value shape drifts from the baseline
    /// by more than this relative amount (default 0.5).
    pub max_shape_drift: f64,
    /// Non-empty pages that learn the shape baseline (default 8).
    pub baseline_pages: usize,
    /// Capacity of the retained raw-page ring buffer (default 16).
    pub retain_pages: usize,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            window: 16,
            min_window: 4,
            max_empty_rate: 0.5,
            max_miss_rate: 0.9,
            max_shape_drift: 0.5,
            baseline_pages: 8,
            retain_pages: 16,
        }
    }
}

/// What one request page looked like to the service, health-wise.
#[derive(Clone, Debug)]
pub struct PageObservation {
    /// Raw HTML of the page (retained for relearning).
    pub html: String,
    /// Extracted value count (0 for errored pages).
    pub values: usize,
    /// Total extracted characters.
    pub chars: usize,
    /// The structured per-page error, if the page failed to parse.
    pub error: Option<String>,
}

impl PageObservation {
    fn is_empty(&self) -> bool {
        self.values == 0
    }
}

/// A point-in-time health snapshot of one site.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteHealth {
    /// The site key.
    pub site: String,
    /// Lifetime requests routed to the site.
    pub requests: u64,
    /// Lifetime pages served.
    pub pages: u64,
    /// Lifetime pages that failed to parse.
    pub error_pages: u64,
    /// Pages currently in the sliding window.
    pub window_pages: usize,
    /// Empty-or-error fraction of the window.
    pub empty_rate: f64,
    /// Template-cache replay-miss fraction of the window.
    pub replay_miss_rate: f64,
    /// Relative value-shape drift vs. the learned baseline (0.0 until a
    /// baseline exists).
    pub shape_drift: f64,
    /// Whether the site is currently past a degradation threshold.
    pub degraded: bool,
    /// Raw pages currently retained for relearning.
    pub retained_pages: usize,
}

/// One entry of the health event journal.
#[derive(Clone, Debug, PartialEq)]
pub enum HealthEvent {
    /// A site crossed a degradation threshold.
    Degraded {
        /// Site key.
        site: String,
        /// Which threshold, with the observed value.
        reason: String,
    },
    /// A degraded (or freshly swapped) site's window refilled healthy.
    Recovered {
        /// Site key.
        site: String,
    },
    /// A shadow relearn began.
    RelearnStarted {
        /// Site key.
        site: String,
        /// 1-based attempt counter since the last successful swap.
        attempt: u32,
    },
    /// The differential check passed and the new wrapper was swapped in.
    RelearnSwapped {
        /// Site key.
        site: String,
        /// Registry generation after the swap.
        generation: u64,
    },
    /// The differential check failed; the old wrapper keeps serving.
    RelearnRejected {
        /// Site key.
        site: String,
        /// Why the candidate lost.
        reason: String,
    },
    /// The relearn pass itself failed (no labels, no wrapper space, …).
    RelearnFailed {
        /// Site key.
        site: String,
        /// 1-based attempt counter.
        attempt: u32,
        /// The failure.
        error: String,
    },
    /// A swapped-out wrapper was rolled back in.
    RolledBack {
        /// Site key.
        site: String,
        /// Registry generation after the rollback.
        generation: u64,
    },
}

impl HealthEvent {
    /// The site the event concerns.
    pub fn site(&self) -> &str {
        match self {
            HealthEvent::Degraded { site, .. }
            | HealthEvent::Recovered { site }
            | HealthEvent::RelearnStarted { site, .. }
            | HealthEvent::RelearnSwapped { site, .. }
            | HealthEvent::RelearnRejected { site, .. }
            | HealthEvent::RelearnFailed { site, .. }
            | HealthEvent::RolledBack { site, .. } => site,
        }
    }
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthEvent::Degraded { site, reason } => write!(f, "{site}: degraded ({reason})"),
            HealthEvent::Recovered { site } => write!(f, "{site}: recovered"),
            HealthEvent::RelearnStarted { site, attempt } => {
                write!(f, "{site}: relearn started (attempt {attempt})")
            }
            HealthEvent::RelearnSwapped { site, generation } => {
                write!(f, "{site}: relearn swapped in (generation {generation})")
            }
            HealthEvent::RelearnRejected { site, reason } => {
                write!(f, "{site}: relearn rejected ({reason})")
            }
            HealthEvent::RelearnFailed {
                site,
                attempt,
                error,
            } => write!(f, "{site}: relearn failed (attempt {attempt}: {error})"),
            HealthEvent::RolledBack { site, generation } => {
                write!(f, "{site}: rolled back (generation {generation})")
            }
        }
    }
}

/// Per-site sliding-window state.
#[derive(Debug, Default)]
struct SiteState {
    requests: u64,
    pages: u64,
    error_pages: u64,
    /// `(empty, values, chars, error)` per page, newest last.
    window: VecDeque<(bool, usize, usize, bool)>,
    /// `(miss delta, pages)` per request, newest last.
    miss_window: VecDeque<(u64, usize)>,
    /// `(mean values per non-empty page, mean chars per value)`.
    baseline: Option<(f64, f64)>,
    /// Non-empty page stats accumulating toward the baseline.
    baseline_acc: Vec<(usize, usize)>,
    /// Retained raw pages, `(html, was_empty)`, newest last.
    retained: VecDeque<(String, bool)>,
    /// Last cumulative `(hits, misses)` seen from the serving wrapper.
    last_cache: Option<(u64, u64)>,
    degraded: bool,
    /// Set after a swap/reset: the next healthy full window journals a
    /// `Recovered` event.
    recovering: bool,
}

impl SiteState {
    fn empty_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let empty = self.window.iter().filter(|(e, ..)| *e).count();
        empty as f64 / self.window.len() as f64
    }

    fn miss_rate(&self) -> f64 {
        let pages: usize = self.miss_window.iter().map(|(_, p)| p).sum();
        if pages == 0 {
            return 0.0;
        }
        let misses: u64 = self.miss_window.iter().map(|(m, _)| m).sum();
        (misses as f64 / pages as f64).min(1.0)
    }

    fn shape_drift(&self) -> f64 {
        let Some((base_values, base_chars)) = self.baseline else {
            return 0.0;
        };
        let non_empty: Vec<&(bool, usize, usize, bool)> =
            self.window.iter().filter(|(e, ..)| !e).collect();
        if non_empty.is_empty() {
            return 0.0; // emptiness is the empty-rate signal's job
        }
        let values: usize = non_empty.iter().map(|(_, v, ..)| v).sum();
        let chars: usize = non_empty.iter().map(|(_, _, c, _)| c).sum();
        let mean_values = values as f64 / non_empty.len() as f64;
        let mean_chars = if values == 0 {
            0.0
        } else {
            chars as f64 / values as f64
        };
        let rel = |now: f64, base: f64| {
            if base == 0.0 {
                0.0
            } else {
                (now - base).abs() / base
            }
        };
        rel(mean_values, base_values).max(rel(mean_chars, base_chars))
    }

    /// The crossed threshold with its observed value, if any.
    fn degradation(&self, t: &HealthThresholds) -> Option<String> {
        if self.window.len() < t.min_window {
            return None;
        }
        let empty = self.empty_rate();
        if empty > t.max_empty_rate {
            return Some(format!("empty rate {empty:.2} > {:.2}", t.max_empty_rate));
        }
        let miss = self.miss_rate();
        if miss > t.max_miss_rate {
            return Some(format!(
                "replay miss rate {miss:.2} > {:.2}",
                t.max_miss_rate
            ));
        }
        let drift = self.shape_drift();
        if drift > t.max_shape_drift {
            return Some(format!("shape drift {drift:.2} > {:.2}", t.max_shape_drift));
        }
        None
    }
}

/// Per-site health accounting plus the health event journal.
///
/// Shared (`Arc`) between the [`crate::ExtractionService`] that feeds it
/// and the [`crate::relearn::RelearnController`] that consumes its
/// retained pages and writes relearn transitions into its journal.
#[derive(Debug)]
pub struct HealthTracker {
    thresholds: HealthThresholds,
    sites: Mutex<BTreeMap<String, SiteState>>,
    journal: Mutex<Vec<HealthEvent>>,
}

impl Default for HealthTracker {
    fn default() -> HealthTracker {
        HealthTracker::new(HealthThresholds::default())
    }
}

impl HealthTracker {
    /// A tracker with the given thresholds.
    pub fn new(thresholds: HealthThresholds) -> HealthTracker {
        HealthTracker {
            thresholds,
            sites: Mutex::new(BTreeMap::new()),
            journal: Mutex::new(Vec::new()),
        }
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> &HealthThresholds {
        &self.thresholds
    }

    /// Feeds one served request's page observations into the site's
    /// window, returning `true` when the site *newly* crossed a
    /// degradation threshold (the edge, not the level: the caller
    /// enqueues one relearn per degradation episode).
    pub fn observe(
        &self,
        site: &str,
        observations: &[PageObservation],
        cache_stats: Option<(u64, u64)>,
    ) -> bool {
        let t = &self.thresholds;
        let mut sites = lock(&self.sites);
        let state = sites.entry(site.to_string()).or_default();
        state.requests += 1;
        state.pages += observations.len() as u64;

        // Replay-miss delta attributed to this request. A smaller
        // cumulative counter means the serving wrapper was swapped (its
        // cache restarted) — treat the new value as the new base.
        let miss_delta = match (cache_stats, state.last_cache) {
            (Some((_, misses)), Some((_, last))) if misses >= last => misses - last,
            (Some((_, misses)), _) => misses,
            (None, _) => 0,
        };
        state.last_cache = cache_stats;
        state
            .miss_window
            .push_back((miss_delta, observations.len()));
        while state.miss_window.len() > t.window {
            state.miss_window.pop_front();
        }

        for page in observations {
            if page.error.is_some() {
                state.error_pages += 1;
            }
            state.window.push_back((
                page.is_empty(),
                page.values,
                page.chars,
                page.error.is_some(),
            ));
            while state.window.len() > t.window {
                state.window.pop_front();
            }
            // Parse failures are not useful relearn material; healthy
            // and drifted pages both are.
            if page.error.is_none() {
                state
                    .retained
                    .push_back((page.html.clone(), page.is_empty()));
                while state.retained.len() > t.retain_pages {
                    state.retained.pop_front();
                }
            }
            if !page.is_empty() && state.baseline.is_none() {
                state.baseline_acc.push((page.values, page.chars));
                if state.baseline_acc.len() >= t.baseline_pages {
                    let pages = state.baseline_acc.len() as f64;
                    let values: usize = state.baseline_acc.iter().map(|(v, _)| v).sum();
                    let chars: usize = state.baseline_acc.iter().map(|(_, c)| c).sum();
                    state.baseline = Some((
                        values as f64 / pages,
                        if values == 0 {
                            0.0
                        } else {
                            chars as f64 / values as f64
                        },
                    ));
                }
            }
        }

        let reason = state.degradation(t);
        match (&reason, state.degraded) {
            (Some(reason), false) => {
                state.degraded = true;
                state.recovering = false;
                let event = HealthEvent::Degraded {
                    site: site.to_string(),
                    reason: reason.clone(),
                };
                drop(sites);
                self.record(event);
                true
            }
            (None, _) => {
                let was_degraded = state.degraded;
                let recovering = state.recovering;
                state.degraded = false;
                if (was_degraded || recovering) && state.window.len() >= t.min_window {
                    state.recovering = false;
                    let event = HealthEvent::Recovered {
                        site: site.to_string(),
                    };
                    drop(sites);
                    self.record(event);
                }
                false
            }
            (Some(_), true) => false,
        }
    }

    /// The current health snapshot of one site (`None` when the site has
    /// served no request yet).
    pub fn health(&self, site: &str) -> Option<SiteHealth> {
        let sites = lock(&self.sites);
        sites.get(site).map(|s| snapshot(site, s))
    }

    /// Health snapshots of every observed site, in key order.
    pub fn all_health(&self) -> Vec<SiteHealth> {
        lock(&self.sites)
            .iter()
            .map(|(site, s)| snapshot(site, s))
            .collect()
    }

    /// The retained raw pages of a site, oldest first, each tagged with
    /// whether the serving wrapper extracted nothing from it.
    pub fn retained_pages(&self, site: &str) -> Vec<(String, bool)> {
        lock(&self.sites)
            .get(site)
            .map(|s| s.retained.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Resets a site's window, baseline and retained ring after a
    /// wrapper swap: the new wrapper learns a fresh baseline on its own
    /// template, and a subsequent healthy window journals `Recovered`.
    pub fn reset_site(&self, site: &str) {
        let mut sites = lock(&self.sites);
        if let Some(state) = sites.get_mut(site) {
            state.window.clear();
            state.miss_window.clear();
            state.baseline = None;
            state.baseline_acc.clear();
            state.retained.clear();
            state.last_cache = None;
            state.degraded = false;
            state.recovering = true;
        }
    }

    /// Appends an event to the journal.
    pub fn record(&self, event: HealthEvent) {
        lock(&self.journal).push(event);
    }

    /// The full journal, oldest first.
    pub fn journal(&self) -> Vec<HealthEvent> {
        lock(&self.journal).clone()
    }

    /// The journal entries concerning one site, oldest first.
    pub fn journal_for(&self, site: &str) -> Vec<HealthEvent> {
        lock(&self.journal)
            .iter()
            .filter(|e| e.site() == site)
            .cloned()
            .collect()
    }
}

fn snapshot(site: &str, s: &SiteState) -> SiteHealth {
    SiteHealth {
        site: site.to_string(),
        requests: s.requests,
        pages: s.pages,
        error_pages: s.error_pages,
        window_pages: s.window.len(),
        empty_rate: s.empty_rate(),
        replay_miss_rate: s.miss_rate(),
        shape_drift: s.shape_drift(),
        degraded: s.degraded,
        retained_pages: s.retained.len(),
    }
}

/// Poison-recovering lock: health accounting must never wedge the
/// serving loop because one request panicked mid-observation.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(values: usize, chars: usize) -> PageObservation {
        PageObservation {
            html: format!("<p>{}</p>", "x".repeat(chars.max(1))),
            values,
            chars,
            error: None,
        }
    }

    fn empty_page() -> PageObservation {
        page(0, 0)
    }

    fn thresholds() -> HealthThresholds {
        HealthThresholds {
            window: 8,
            min_window: 4,
            baseline_pages: 4,
            retain_pages: 8,
            ..HealthThresholds::default()
        }
    }

    #[test]
    fn healthy_stream_never_degrades() {
        let t = HealthTracker::new(thresholds());
        for _ in 0..20 {
            assert!(!t.observe("s", &[page(4, 40)], None));
        }
        let h = t.health("s").unwrap();
        assert_eq!(h.requests, 20);
        assert_eq!(h.pages, 20);
        assert!(!h.degraded);
        assert_eq!(h.empty_rate, 0.0);
        assert_eq!(h.shape_drift, 0.0);
        assert!(t.journal().is_empty());
    }

    #[test]
    fn empty_rate_crosses_threshold_once() {
        let t = HealthTracker::new(thresholds());
        for _ in 0..4 {
            t.observe("s", &[page(4, 40)], None);
        }
        // Window of 8: after 5 empty pages the rate is 5/8 > 0.5 — and
        // only the crossing request reports the edge.
        let mut edges = 0;
        for _ in 0..6 {
            if t.observe("s", &[empty_page()], None) {
                edges += 1;
            }
        }
        assert_eq!(edges, 1);
        let h = t.health("s").unwrap();
        assert!(h.degraded);
        assert!(h.empty_rate > 0.5, "{}", h.empty_rate);
        assert_eq!(t.journal().len(), 1);
        assert!(matches!(&t.journal()[0], HealthEvent::Degraded { site, .. } if site == "s"));
    }

    #[test]
    fn shape_drift_detected_against_learned_baseline() {
        let t = HealthTracker::new(thresholds());
        // Learn a 4-values-per-page baseline…
        for _ in 0..4 {
            t.observe("s", &[page(4, 40)], None);
        }
        // …then the wrapper starts matching a single wrong value.
        let mut degraded = false;
        for _ in 0..8 {
            degraded |= t.observe("s", &[page(1, 10)], None);
        }
        assert!(degraded);
        let h = t.health("s").unwrap();
        assert!(h.shape_drift > 0.5, "{}", h.shape_drift);
        assert_eq!(h.empty_rate, 0.0, "no page was empty");
    }

    #[test]
    fn miss_spike_detected_via_cache_deltas() {
        let t = HealthTracker::new(HealthThresholds {
            max_miss_rate: 0.6,
            ..thresholds()
        });
        // Warm: every page replays (no new misses).
        for i in 0..4u64 {
            assert!(!t.observe("s", &[page(3, 30)], Some((i, 1))));
        }
        // Every page a novel template: misses grow 1 per page.
        let mut degraded = false;
        for i in 0..8u64 {
            degraded |= t.observe("s", &[page(3, 30)], Some((4, 2 + i)));
        }
        assert!(degraded);
        assert!(t.health("s").unwrap().replay_miss_rate > 0.6);
    }

    #[test]
    fn page_errors_count_toward_window_and_lifetime() {
        let t = HealthTracker::new(thresholds());
        for _ in 0..5 {
            t.observe(
                "s",
                &[PageObservation {
                    html: String::new(),
                    values: 0,
                    chars: 0,
                    error: Some("no parseable content".into()),
                }],
                None,
            );
        }
        let h = t.health("s").unwrap();
        assert_eq!(h.error_pages, 5);
        assert!(h.degraded, "all-error windows degrade via empty rate");
        assert_eq!(h.retained_pages, 0, "error pages are not relearn material");
    }

    #[test]
    fn retained_ring_is_bounded_and_tags_empties() {
        let t = HealthTracker::new(thresholds());
        for i in 0..12 {
            t.observe(
                "s",
                &[PageObservation {
                    html: format!("<p>page {i}</p>"),
                    values: usize::from(i % 2 == 0),
                    chars: 5,
                    error: None,
                }],
                None,
            );
        }
        let retained = t.retained_pages("s");
        assert_eq!(retained.len(), 8, "ring capacity");
        assert_eq!(
            retained[0].0, "<p>page 4</p>",
            "oldest first, oldest evicted"
        );
        assert!(retained.iter().any(|(_, empty)| *empty));
    }

    #[test]
    fn reset_then_healthy_window_journals_recovery() {
        let t = HealthTracker::new(thresholds());
        for _ in 0..4 {
            t.observe("s", &[page(4, 40)], None);
        }
        for _ in 0..6 {
            t.observe("s", &[empty_page()], None);
        }
        assert!(t.health("s").unwrap().degraded);
        t.reset_site("s");
        let h = t.health("s").unwrap();
        assert!(!h.degraded);
        assert_eq!(h.window_pages, 0);
        assert_eq!(h.retained_pages, 0);
        for _ in 0..4 {
            t.observe("s", &[page(4, 40)], None);
        }
        let journal = t.journal();
        assert!(matches!(journal.last(), Some(HealthEvent::Recovered { site }) if site == "s"));
        assert_eq!(
            journal
                .iter()
                .filter(|e| matches!(e, HealthEvent::Recovered { .. }))
                .count(),
            1,
            "recovery is an edge, not a level"
        );
    }

    #[test]
    fn unknown_site_has_no_health() {
        let t = HealthTracker::new(HealthThresholds::default());
        assert!(t.health("nope").is_none());
        assert!(t.all_health().is_empty());
        assert!(t.retained_pages("nope").is_empty());
    }
}
