//! The serving side: a resident wrapper store and a concurrent
//! extraction service.
//!
//! The paper's economics are "learn offline, extract at web scale": a
//! wrapper is induced once per site and then applied to every page the
//! crawler brings in. Until this module the public surface stopped at
//! one-shot [`CompiledWrapper::extract_pages`] calls — there was no API
//! for holding *many* sites' wrappers resident and answering concurrent
//! extraction requests. Two types close that gap:
//!
//! * [`WrapperRegistry`] — a read-mostly map from site keys to serving
//!   wrappers. Readers take an atomic snapshot (`Arc` swap behind a
//!   brief `RwLock`), so a request in flight always sees one consistent
//!   generation: hot-swapping a [`WrapperBundle`] under load never
//!   serves a torn view. Wrappers untouched by an update keep their
//!   identity — and therefore their warmed template caches. At web
//!   scale the registry goes **lazy**: built over a v3
//!   [`crate::BundleStore`] ([`WrapperRegistry::from_store`]), it
//!   faults wrappers in per site on demand and bounds residency with
//!   LRU eviction — same snapshot atomicity, byte-identical responses.
//! * [`ExtractionService`] — the request loop. [`ExtractionService::handle`]
//!   parses each request page once into a `DocIndex`, routes to the
//!   site's wrapper, and evaluates through that wrapper's **persistent
//!   per-site batch trie and cross-page [`aw_xpath::TemplateCache`]**
//!   on the shared executor. Structurally identical pages arriving in
//!   *separate requests* therefore hit template replay: the cache
//!   belongs to the resident wrapper, not to any single call.
//!
//! `aw-serve` fronts an `ExtractionService` with an HTTP/1.1 interface
//! (`awrap serve`); in-process consumers use it directly (see
//! `examples/serve_extract.rs`). Responses are byte-identical to direct
//! [`CompiledWrapper::extract_pages`] for every language, thread count
//! and cache setting — enforced by `tests/extraction_service.rs`.

use crate::artifact::{CompiledWrapper, WrapperBundle};
use crate::config::WrapperLanguage;
use crate::error::AwError;
use crate::health::{HealthThresholds, HealthTracker, PageObservation, SiteHealth};
use crate::latency::LatencyHistogram;
use crate::relearn::RelearnController;
use crate::store::BundleStore;
use aw_dom::Document;
use aw_pool::Executor;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One immutable generation of the registry's contents.
#[derive(Debug, Default)]
struct Snapshot {
    wrappers: BTreeMap<String, Arc<CompiledWrapper>>,
    generation: u64,
}

/// LRU residency bookkeeping for a registry backed by a
/// [`BundleStore`]: which resident site was touched when, the recently
/// evicted grace set, and the fault/eviction counters.
///
/// Guarded by one mutex, taken by every registry mutation and by the
/// lazy read path ([`WrapperRegistry::get_or_fault`]) — **before** the
/// snapshot lock, always in that order. The fully-resident read path
/// ([`WrapperRegistry::get`]) never touches it.
#[derive(Debug, Default)]
struct Residency {
    /// The backing store faults load from; `None` until attached.
    store: Option<Arc<BundleStore>>,
    /// Cap on resident wrappers; `None` = unbounded.
    max_resident: Option<usize>,
    /// Monotonic access clock for LRU ordering.
    tick: u64,
    /// Last-touch tick per resident site (absent = never touched,
    /// i.e. first in line for eviction).
    touch: BTreeMap<String, u64>,
    /// Recently evicted wrappers, oldest first. A re-request within
    /// the grace window reinstates the *same* `Arc` — warmed template
    /// caches survive one round trip through eviction.
    grace: VecDeque<(String, Arc<CompiledWrapper>)>,
    /// Segments faulted in from the store.
    faults: u64,
    /// Wrappers evicted to enforce `max_resident`.
    evictions: u64,
    /// Faults answered from the grace set (cache-warm reinstates).
    grace_hits: u64,
}

impl Residency {
    /// Grace window size: a quarter of the residency cap, floor 2.
    fn grace_cap(&self) -> usize {
        self.max_resident.map_or(2, |cap| (cap / 4).max(2))
    }

    fn touch(&mut self, site: &str) {
        self.tick += 1;
        self.touch.insert(site.to_string(), self.tick);
    }

    fn forget(&mut self, site: &str) {
        self.touch.remove(site);
        self.grace.retain(|(key, _)| key != site);
    }
}

/// A point-in-time report of a lazy registry's residency state — the
/// payload behind the HTTP front end's `GET /wrappers` `"residency"`
/// object.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Wrappers currently resident (= [`WrapperRegistry::len`]).
    pub resident: usize,
    /// The residency cap, if one is set.
    pub max_resident: Option<usize>,
    /// Sites indexed by the attached [`BundleStore`], if one is.
    pub store_sites: Option<usize>,
    /// Segments faulted in from the store since attach.
    pub faults: u64,
    /// Wrappers evicted to enforce the cap.
    pub evictions: u64,
    /// Evicted wrappers currently in the grace window.
    pub grace_entries: usize,
    /// Faults answered by reinstating a grace-window wrapper (its
    /// warmed template cache intact).
    pub grace_hits: u64,
}

/// A read-mostly, atomically swappable store of serving wrappers, keyed
/// by site.
///
/// Reads clone an `Arc` snapshot under a briefly-held read lock; every
/// mutation builds a fresh snapshot (sharing the untouched wrappers'
/// `Arc`s, so their template caches survive) and swaps it in whole. A
/// concurrent reader therefore observes either the old generation or
/// the new one, never a mixture.
///
/// ## Lazy mode: bounded residency over a [`BundleStore`]
///
/// A registry built with [`WrapperRegistry::from_store`] starts
/// *empty* and faults wrappers in one segment at a time as requests
/// name them ([`WrapperRegistry::get_or_fault`]), optionally bounded
/// by a residency cap: the least-recently-touched wrapper is evicted
/// when the cap is exceeded, passing through a small grace window that
/// preserves its warmed template cache across an immediate
/// re-request. Snapshots stay atomic — a fault-in or eviction is an
/// ordinary hot swap, so concurrent readers still see one consistent
/// generation and responses are byte-identical to the fully-resident
/// path.
///
/// ## Generation contract
///
/// The generation counts mutation *attempts*, not effective changes:
/// every [`WrapperRegistry::load_bundle`] / insert / remove swaps in a
/// new snapshot and bumps it, including a remove of an absent key. In
/// lazy mode, fault-ins and evictions are mutations like any other —
/// each bumps the generation once.
#[derive(Debug, Default)]
pub struct WrapperRegistry {
    snapshot: RwLock<Arc<Snapshot>>,
    residency: Mutex<Residency>,
    /// Fast-path flag mirroring `residency.store.is_some()`: lets
    /// [`WrapperRegistry::get_or_fault`] skip the residency mutex
    /// entirely for fully-resident registries.
    lazy: AtomicBool,
}

impl WrapperRegistry {
    /// An empty registry (generation 0).
    pub fn new() -> WrapperRegistry {
        WrapperRegistry::default()
    }

    /// A registry pre-loaded with a bundle's wrappers (generation 1).
    pub fn from_bundle(bundle: WrapperBundle) -> WrapperRegistry {
        let registry = WrapperRegistry::new();
        registry.load_bundle(bundle);
        registry
    }

    /// A **lazy** registry over a v3 [`BundleStore`]: starts empty
    /// (generation 0) and faults wrappers in per site on
    /// [`WrapperRegistry::get_or_fault`], keeping at most
    /// `max_resident` resident (`None` = unbounded).
    pub fn from_store(store: Arc<BundleStore>, max_resident: Option<usize>) -> WrapperRegistry {
        let registry = WrapperRegistry::new();
        {
            let mut res = registry.residency();
            res.store = Some(store);
            res.max_resident = max_resident.map(|cap| cap.max(1));
        }
        registry.lazy.store(true, Ordering::Release);
        registry
    }

    fn residency(&self) -> std::sync::MutexGuard<'_, Residency> {
        self.residency
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn read(&self) -> Arc<Snapshot> {
        // Recover from poisoning instead of panicking: the slot only
        // ever holds a fully-built Arc (swapped in one assignment), so
        // a panic elsewhere cannot leave it inconsistent — and a
        // serving loop must not let one panicked request poison every
        // later one.
        Arc::clone(
            &self
                .snapshot
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Builds the next generation from the current one and swaps it in.
    fn swap(
        &self,
        update: impl FnOnce(&Snapshot) -> BTreeMap<String, Arc<CompiledWrapper>>,
    ) -> u64 {
        let mut slot = self
            .snapshot
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let next = Snapshot {
            wrappers: update(&slot),
            generation: slot.generation + 1,
        };
        let generation = next.generation;
        *slot = Arc::new(next);
        generation
    }

    /// **Hot swap**: atomically replaces the registry's entire contents
    /// with the bundle's wrappers, returning the new generation.
    /// Requests already holding the previous snapshot finish against it;
    /// new requests see only the new one.
    ///
    /// In lazy mode the swapped-in wrappers are all counted as freshly
    /// touched and the grace window is cleared; if the bundle exceeds
    /// the residency cap, evictions follow immediately (each bumping
    /// the generation past the returned one).
    pub fn load_bundle(&self, bundle: WrapperBundle) -> u64 {
        let mut res = self.residency();
        let wrappers: BTreeMap<String, Arc<CompiledWrapper>> = bundle
            .into_iter()
            .map(|(key, wrapper)| (key, Arc::new(wrapper)))
            .collect();
        let keys: Vec<String> = wrappers.keys().cloned().collect();
        let generation = self.swap(move |_| wrappers);
        if self.lazy.load(Ordering::Acquire) {
            res.touch.clear();
            res.grace.clear();
            for key in &keys {
                res.touch(key);
            }
            self.evict_to_cap(&mut res);
        }
        generation
    }

    /// Adds (or replaces) one site's wrapper, returning the new
    /// generation. Other sites' wrappers — and their warmed template
    /// caches — are untouched.
    pub fn insert(&self, site: impl Into<String>, wrapper: CompiledWrapper) -> u64 {
        self.insert_shared(site, Arc::new(wrapper))
    }

    /// [`WrapperRegistry::insert`] for a wrapper that is already shared.
    /// `CompiledWrapper` is deliberately not `Clone` (its caches are
    /// identity), so re-installing a previously displaced wrapper — the
    /// relearn loop's rollback path — goes through its retained `Arc`.
    ///
    /// Returns the generation of the snapshot that contains the insert.
    /// Like every mutator it bumps the generation exactly once — even
    /// when re-installing the `Arc` already serving `site` (the
    /// rollback no-op still swaps). In lazy mode the inserted site
    /// counts as freshly touched; a capacity eviction triggered by the
    /// insert advances the generation *past* the returned value.
    pub fn insert_shared(&self, site: impl Into<String>, wrapper: Arc<CompiledWrapper>) -> u64 {
        let site = site.into();
        let mut res = self.residency();
        let generation = self.swap({
            let site = site.clone();
            move |current| {
                let mut next = current.wrappers.clone();
                next.insert(site, wrapper);
                next
            }
        });
        if self.lazy.load(Ordering::Acquire) {
            // A direct insert supersedes any graced copy of the site.
            res.grace.retain(|(key, _)| key != &site);
            res.touch(&site);
            self.evict_to_cap(&mut res);
        }
        generation
    }

    /// Removes one site's wrapper; `true` if it was present.
    ///
    /// Removing an **absent** key still swaps in a (contents-identical)
    /// snapshot and bumps the generation: the generation counts
    /// mutation attempts, so a deployer polling for "generation ≥ G"
    /// needs no special case for no-op removes. In lazy mode the site's
    /// touch record and any graced copy are dropped too — but the
    /// backing [`BundleStore`] is immutable, so a later
    /// [`WrapperRegistry::get_or_fault`] re-faults a pristine copy:
    /// `remove` evicts a site from residency, it does not unpublish it.
    pub fn remove(&self, site: &str) -> bool {
        let mut res = self.residency();
        let mut removed = false;
        self.swap(|current| {
            let mut next = current.wrappers.clone();
            removed = next.remove(site).is_some();
            next
        });
        res.forget(site);
        removed
    }

    /// The wrapper serving `site`, from the current snapshot. The `Arc`
    /// keeps serving consistently even if the registry is swapped while
    /// the request is in flight.
    ///
    /// Resident wrappers only: in lazy mode this never faults — use
    /// [`WrapperRegistry::get_or_fault`] on the request path.
    pub fn get(&self, site: &str) -> Option<Arc<CompiledWrapper>> {
        self.read().wrappers.get(site).cloned()
    }

    /// The wrapper serving `site`, faulting it in from the attached
    /// [`BundleStore`] if it is not resident — the request-path lookup
    /// ([`ExtractionService::handle`] uses it).
    ///
    /// Resolution order: resident snapshot (no fault), grace window
    /// (reinstates the evicted `Arc`, warmed template cache intact),
    /// then the store (deserializes one segment). `Ok(None)` when the
    /// site is nowhere; errors only for a damaged store segment.
    /// Without an attached store this is exactly [`WrapperRegistry::get`]
    /// and takes no lock beyond the snapshot read.
    pub fn get_or_fault(&self, site: &str) -> Result<Option<Arc<CompiledWrapper>>, AwError> {
        if !self.lazy.load(Ordering::Acquire) {
            return Ok(self.get(site));
        }
        let mut res = self.residency();
        if let Some(wrapper) = self.get(site) {
            res.touch(site);
            return Ok(Some(wrapper));
        }
        if let Some(pos) = res.grace.iter().position(|(key, _)| key == site) {
            let (key, wrapper) = res.grace.remove(pos).expect("position is in bounds");
            res.grace_hits += 1;
            self.install(&mut res, key, Arc::clone(&wrapper));
            return Ok(Some(wrapper));
        }
        let Some(store) = res.store.clone() else {
            return Ok(None);
        };
        match store.load(site)? {
            None => Ok(None),
            Some(wrapper) => {
                let wrapper = Arc::new(wrapper);
                res.faults += 1;
                self.install(&mut res, site.to_string(), Arc::clone(&wrapper));
                Ok(Some(wrapper))
            }
        }
    }

    /// Installs a faulted-in wrapper: touch, swap it into the snapshot,
    /// enforce the cap. Caller holds the residency lock.
    fn install(&self, res: &mut Residency, site: String, wrapper: Arc<CompiledWrapper>) {
        res.touch(&site);
        self.swap(move |current| {
            let mut next = current.wrappers.clone();
            next.insert(site, wrapper);
            next
        });
        self.evict_to_cap(res);
    }

    /// Evicts least-recently-touched wrappers until the resident count
    /// is within the cap, parking each in the grace window. Caller
    /// holds the residency lock; each eviction is an ordinary snapshot
    /// swap (generation bumps once per evicted site).
    fn evict_to_cap(&self, res: &mut Residency) {
        let Some(cap) = res.max_resident else {
            return;
        };
        loop {
            let snapshot = self.read();
            if snapshot.wrappers.len() <= cap {
                break;
            }
            let victim = snapshot
                .wrappers
                .keys()
                .min_by_key(|key| res.touch.get(*key).copied().unwrap_or(0))
                .expect("over-cap snapshot is nonempty")
                .clone();
            let wrapper = snapshot
                .wrappers
                .get(&victim)
                .cloned()
                .expect("victim came from this snapshot");
            drop(snapshot);
            self.swap(|current| {
                let mut next = current.wrappers.clone();
                next.remove(&victim);
                next
            });
            res.touch.remove(&victim);
            res.evictions += 1;
            res.grace.push_back((victim, wrapper));
            let grace_cap = res.grace_cap();
            while res.grace.len() > grace_cap {
                res.grace.pop_front();
            }
        }
    }

    /// A point-in-time residency report. Meaningful for lazy
    /// registries; a fully-resident one reports its size with no store
    /// and zero counters.
    pub fn residency_stats(&self) -> ResidencyStats {
        let res = self.residency();
        ResidencyStats {
            resident: self.len(),
            max_resident: res.max_resident,
            store_sites: res.store.as_ref().map(|store| store.len()),
            faults: res.faults,
            evictions: res.evictions,
            grace_entries: res.grace.len(),
            grace_hits: res.grace_hits,
        }
    }

    /// The registered site keys, ascending.
    pub fn site_keys(&self) -> Vec<String> {
        self.read().wrappers.keys().cloned().collect()
    }

    /// `(site key, wrapper)` pairs of the current snapshot, in key
    /// order — one consistent generation.
    pub fn entries(&self) -> Vec<(String, Arc<CompiledWrapper>)> {
        self.snapshot_entries().1
    }

    /// `(generation, site count)` from one snapshot read — the
    /// allocation-free pairing for liveness probes that only need a
    /// count (cf. [`WrapperRegistry::snapshot_entries`]).
    pub fn snapshot_stats(&self) -> (u64, usize) {
        let snapshot = self.read();
        (snapshot.generation, snapshot.wrappers.len())
    }

    /// The generation **and** its entries from one snapshot read —
    /// unlike separate [`WrapperRegistry::generation`] +
    /// [`WrapperRegistry::entries`] calls, the pairing cannot straddle
    /// a concurrent hot swap (a deployer polling for generation ≥ G
    /// must never see G paired with the pre-swap site list).
    pub fn snapshot_entries(&self) -> (u64, Vec<(String, Arc<CompiledWrapper>)>) {
        let snapshot = self.read();
        (
            snapshot.generation,
            snapshot
                .wrappers
                .iter()
                .map(|(k, w)| (k.clone(), Arc::clone(w)))
                .collect(),
        )
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.read().wrappers.len()
    }

    /// True when no wrapper is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mutation counter: 0 for a fresh registry, bumped by every
    /// [`WrapperRegistry::load_bundle`] / insert / remove.
    pub fn generation(&self) -> u64 {
        self.read().generation
    }
}

/// A point-in-time report of the service's request-path parsing — the
/// payload behind the HTTP front end's `GET /wrappers` `"parse"` object.
///
/// `stream` counts pages that went through the one-pass
/// [`aw_dom::parse_indexed`] path; `fallback` counts pages parsed by the
/// classic parse-then-index oracle (`AW_STREAM_PARSE=0` or
/// [`ExtractionService::with_stream_parse`]`(false)`). The two paths are
/// byte-identical in output, so the split is purely observability.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Pages parsed on the request path (parse failures included).
    pub pages: u64,
    /// Pages parsed by the streaming one-pass indexer.
    pub stream: u64,
    /// Pages parsed by the classic parse-then-index fallback.
    pub fallback: u64,
    /// Cumulative wall time spent parsing + indexing, in microseconds.
    pub micros: u64,
}

/// Lock-free accumulators behind [`ParseStats`]; relaxed ordering is
/// fine — the counters are monotonic telemetry, never synchronization.
#[derive(Debug, Default)]
struct ParseCounters {
    pages: AtomicU64,
    stream: AtomicU64,
    fallback: AtomicU64,
    micros: AtomicU64,
}

impl ParseCounters {
    fn observe(&self, streamed: bool, micros: u64) {
        self.pages.fetch_add(1, Ordering::Relaxed);
        if streamed {
            self.stream.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fallback.fetch_add(1, Ordering::Relaxed);
        }
        self.micros.fetch_add(micros, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ParseStats {
        ParseStats {
            pages: self.pages.load(Ordering::Relaxed),
            stream: self.stream.load(Ordering::Relaxed),
            fallback: self.fallback.load(Ordering::Relaxed),
            micros: self.micros.load(Ordering::Relaxed),
        }
    }
}

/// One extraction request: raw HTML pages of one registered site.
#[derive(Clone, Debug)]
pub struct ExtractRequest {
    /// The site key the pages belong to (routes to that site's wrapper).
    pub site: String,
    /// The pages to extract from, as raw HTML (one entry per page).
    pub pages: Vec<String>,
}

impl ExtractRequest {
    /// A request for one page.
    pub fn single(site: impl Into<String>, html: impl Into<String>) -> ExtractRequest {
        ExtractRequest {
            site: site.into(),
            pages: vec![html.into()],
        }
    }
}

/// What [`ExtractionService::handle`] extracted.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtractResponse {
    /// The site key the request routed to.
    pub site: String,
    /// The serving wrapper's language.
    pub language: WrapperLanguage,
    /// The serving wrapper's rule, in display form.
    pub rule: String,
    /// Extracted text values, one list per request page (aligned with
    /// [`ExtractRequest::pages`]).
    pub pages: Vec<Vec<String>>,
    /// Structured per-page errors, aligned with `pages`: `Some` when a
    /// request page failed to parse (it contributes an empty value list
    /// and counts toward the site's health window; the request as a
    /// whole still succeeds).
    pub errors: Vec<Option<String>>,
}

impl ExtractResponse {
    /// All extracted values, flattened across the request's pages.
    pub fn values(&self) -> impl Iterator<Item = &str> {
        self.pages.iter().flatten().map(String::as_str)
    }
}

/// The concurrent serving loop over a [`WrapperRegistry`].
///
/// `&ExtractionService` is `Sync`: any number of threads call
/// [`ExtractionService::handle`] simultaneously (the HTTP front end in
/// `aw-serve` does exactly that, one connection per worker). Responses
/// are deterministic — byte-identical to sequential evaluation at every
/// thread count and cache setting.
#[derive(Debug)]
pub struct ExtractionService {
    registry: Arc<WrapperRegistry>,
    executor: Executor,
    health: Arc<HealthTracker>,
    health_enabled: bool,
    relearn: Option<Arc<RelearnController>>,
    latency: LatencyHistogram,
    /// Route request pages through the one-pass streaming indexer
    /// (default) or the classic parse-then-index oracle.
    stream_parse: bool,
    parse_counters: ParseCounters,
}

impl ExtractionService {
    /// A service over `registry`, evaluating on [`Executor::global`],
    /// with health tracking on at default thresholds. Request pages go
    /// through the one-pass streaming parser unless the process was
    /// started with `AW_STREAM_PARSE=0` (the differential-oracle
    /// escape hatch, like `reference` vs compiled xpath engines).
    pub fn new(registry: Arc<WrapperRegistry>) -> ExtractionService {
        let stream_parse = std::env::var("AW_STREAM_PARSE").map_or(true, |v| v != "0");
        ExtractionService {
            registry,
            executor: Executor::global().clone(),
            health: Arc::new(HealthTracker::default()),
            health_enabled: true,
            relearn: None,
            latency: LatencyHistogram::new(),
            stream_parse,
            parse_counters: ParseCounters::default(),
        }
    }

    /// Replaces the executor driving page parsing and evaluation.
    pub fn with_executor(mut self, executor: Executor) -> ExtractionService {
        self.executor = executor;
        self
    }

    /// Replaces the health tracker with one at the given thresholds.
    /// Call before [`crate::relearn::RelearnController::new`] — the
    /// controller captures the tracker in effect at construction.
    pub fn with_thresholds(mut self, thresholds: HealthThresholds) -> ExtractionService {
        self.health = Arc::new(HealthTracker::new(thresholds));
        self
    }

    /// Turns per-request health accounting on or off (on by default).
    /// With it off, requests skip the tracker entirely — the toggle the
    /// `service_health_ratio` benchmark flips.
    pub fn with_health_tracking(mut self, enabled: bool) -> ExtractionService {
        self.health_enabled = enabled;
        self
    }

    /// Attaches a relearn controller: sites that newly cross a
    /// degradation threshold are enqueued on it.
    pub fn with_relearn(mut self, relearn: Arc<RelearnController>) -> ExtractionService {
        self.relearn = Some(relearn);
        self
    }

    /// Selects the request-path parser: `true` (default) streams pages
    /// through [`aw_dom::parse_indexed`]; `false` falls back to the
    /// classic parse-then-index path. Responses are byte-identical
    /// either way — the toggle exists for differential testing and as
    /// an operational escape hatch (`AW_STREAM_PARSE=0` sets the
    /// default at construction).
    pub fn with_stream_parse(mut self, enabled: bool) -> ExtractionService {
        self.stream_parse = enabled;
        self
    }

    /// True when request pages go through the streaming one-pass parser.
    pub fn stream_parse_enabled(&self) -> bool {
        self.stream_parse
    }

    /// A snapshot of the request-path parse counters.
    pub fn parse_stats(&self) -> ParseStats {
        self.parse_counters.snapshot()
    }

    /// The registry requests route through (shared: hot-swap it from
    /// anywhere, in-flight requests stay consistent).
    pub fn registry(&self) -> &Arc<WrapperRegistry> {
        &self.registry
    }

    /// The executor driving parallel stages.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The health tracker fed by [`ExtractionService::handle`].
    pub fn health(&self) -> &Arc<HealthTracker> {
        &self.health
    }

    /// The service's request-latency histogram. The service itself does
    /// **not** record into it — whoever frames requests does (the HTTP
    /// front end records full per-request wall time; an in-process
    /// caller can record around [`ExtractionService::handle`]), so the
    /// numbers mean "what a caller waited", not just extraction time.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// The attached relearn controller, if any.
    pub fn relearn(&self) -> Option<&Arc<RelearnController>> {
        self.relearn.as_ref()
    }

    /// One site's health snapshot (`None` until it serves a request).
    pub fn site_health(&self, site: &str) -> Option<SiteHealth> {
        self.health.health(site)
    }

    /// Health snapshots of every site that has served a request.
    pub fn all_health(&self) -> Vec<SiteHealth> {
        self.health.all_health()
    }

    /// Serves one request: parse each page once (building its
    /// `DocIndex`), route to the site's wrapper — faulting it in from
    /// the registry's bundle store if the registry is lazy and the
    /// wrapper is not resident — evaluate through the wrapper's
    /// persistent batch trie + template cache on the service executor,
    /// and return the extracted text values per page.
    ///
    /// Errors with [`AwError::UnknownSite`] when no wrapper is
    /// registered for (or faultable to) the request's site key. A page that fails to
    /// *parse* does not fail the request: it yields an empty value list
    /// plus a structured entry in [`ExtractResponse::errors`], and
    /// counts toward the site's health window.
    pub fn handle(&self, request: &ExtractRequest) -> Result<ExtractResponse, AwError> {
        let wrapper = self
            .registry
            .get_or_fault(&request.site)?
            .ok_or_else(|| AwError::UnknownSite(request.site.clone()))?;
        // One parse + one DocIndex per page; page-parallel for multi-page
        // requests (nested maps join the shared worker team). The default
        // path is the one-pass streaming indexer; `AW_STREAM_PARSE=0` /
        // `with_stream_parse(false)` fall back to the byte-identical
        // parse-then-index oracle. Parsing is infallible by design, but a
        // serving loop must not let one hostile page take down a whole
        // batch — so each page is unwind-guarded and gated on producing
        // at least one node.
        let stream = self.stream_parse;
        let parsed: Vec<Result<Document, String>> = self.executor.map(&request.pages, |html| {
            let started = Instant::now();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if stream {
                    aw_dom::parse_indexed(html).into_document()
                } else {
                    let doc = aw_dom::parse(html);
                    doc.index();
                    doc
                }
            }))
            .map_err(|_| "page parser panicked".to_string())
            .and_then(|doc| {
                if doc.len() <= 1 {
                    Err("page produced no parseable content".to_string())
                } else {
                    Ok(doc)
                }
            });
            self.parse_counters
                .observe(stream, started.elapsed().as_micros() as u64);
            result
        });
        let errors: Vec<Option<String>> =
            parsed.iter().map(|r| r.as_ref().err().cloned()).collect();
        // Errored slots keep an (empty) placeholder document so page
        // alignment through the batch extractor is positional.
        let docs: Vec<Document> = parsed
            .into_iter()
            .map(|r| r.unwrap_or_else(|_| aw_dom::parse("")))
            .collect();
        let pages: Vec<Vec<String>> = wrapper
            .extract_pages_with(&docs, &self.executor)
            .into_iter()
            .zip(&docs)
            .map(|(ids, doc)| {
                ids.into_iter()
                    .filter_map(|id| doc.text(id).map(str::to_string))
                    .collect()
            })
            .collect();
        if self.health_enabled {
            let observations: Vec<PageObservation> = request
                .pages
                .iter()
                .zip(&pages)
                .zip(&errors)
                .map(|((html, values), error)| PageObservation {
                    html: html.clone(),
                    values: values.len(),
                    chars: values.iter().map(String::len).sum(),
                    error: error.clone(),
                })
                .collect();
            let newly_degraded =
                self.health
                    .observe(&request.site, &observations, wrapper.template_cache_stats());
            if newly_degraded {
                if let Some(relearn) = &self.relearn {
                    relearn.enqueue(&request.site);
                }
            }
        }
        Ok(ExtractResponse {
            site: request.site.clone(),
            language: wrapper.language(),
            rule: wrapper.rule().to_string(),
            pages,
            errors,
        })
    }

    /// Serves a batch of requests through the executor; `out[i]` equals
    /// [`ExtractionService::handle`] on `requests[i]` for every thread
    /// count.
    pub fn handle_batch(
        &self,
        requests: &[ExtractRequest],
    ) -> Vec<Result<ExtractResponse, AwError>> {
        self.executor.map(requests, |request| self.handle(request))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::LearnedRule;
    use aw_induct::{NodeSet, Site};

    fn training_site() -> Site {
        let page = |rows: &[(&str, &str)]| {
            let mut s = String::from("<table class='stores'>");
            for (n, a) in rows {
                s.push_str(&format!("<tr><td><b>{n}</b></td><td>{a}</td></tr>"));
            }
            s + "</table>"
        };
        Site::from_html(&[
            page(&[("ALPHA CO", "1 Elm"), ("BETA LLC", "2 Oak")]),
            page(&[("GAMMA INC", "3 Fir"), ("DELTA LTD", "4 Ash")]),
        ])
    }

    fn wrapper(language: WrapperLanguage) -> CompiledWrapper {
        let site = training_site();
        let mut labels = NodeSet::new();
        labels.extend(site.find_text("ALPHA CO"));
        labels.extend(site.find_text("DELTA LTD"));
        CompiledWrapper::from_rule(LearnedRule::learn(&site, language, &labels))
    }

    fn fresh_html(name: &str) -> String {
        format!("<table class='stores'><tr><td><b>{name}</b></td><td>9 Elm</td></tr></table>")
    }

    #[test]
    fn registry_snapshots_are_atomic_and_generation_counts() {
        let registry = WrapperRegistry::new();
        assert_eq!(registry.generation(), 0);
        assert!(registry.is_empty());
        registry.insert("a", wrapper(WrapperLanguage::XPath));
        assert_eq!(registry.generation(), 1);
        registry.insert("b", wrapper(WrapperLanguage::Lr));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.site_keys(), ["a", "b"]);
        assert!(registry.remove("a"));
        assert!(!registry.remove("a"));
        assert_eq!(registry.generation(), 4, "failed removes still swap");
        assert!(registry.get("a").is_none());
        assert!(registry.get("b").is_some());
    }

    fn store_of(languages: &[(&str, WrapperLanguage)]) -> Arc<BundleStore> {
        let mut bundle = WrapperBundle::new();
        for (key, language) in languages {
            bundle.insert(*key, wrapper(*language));
        }
        Arc::new(BundleStore::from_bytes(bundle.to_binary()).unwrap())
    }

    #[test]
    fn lazy_registry_faults_in_per_site_and_counts() {
        let store = store_of(&[
            ("a", WrapperLanguage::XPath),
            ("b", WrapperLanguage::Lr),
            ("c", WrapperLanguage::Hlrt),
        ]);
        let registry = WrapperRegistry::from_store(Arc::clone(&store), None);
        assert_eq!(registry.generation(), 0);
        assert!(registry.is_empty(), "lazy registries start empty");
        assert!(registry.get("a").is_none(), "get never faults");
        let a = registry.get_or_fault("a").unwrap().expect("store has a");
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.generation(), 1, "fault-in is one swap");
        // Second lookup is resident — the same Arc, no extra fault.
        let again = registry.get_or_fault("a").unwrap().unwrap();
        assert!(Arc::ptr_eq(&a, &again));
        assert!(registry.get_or_fault("missing").unwrap().is_none());
        let stats = registry.residency_stats();
        assert_eq!(stats.resident, 1);
        assert_eq!(stats.faults, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.store_sites, Some(3));
        assert_eq!(stats.max_resident, None);
    }

    #[test]
    fn lru_eviction_respects_cap_and_bumps_generation() {
        let store = store_of(&[
            ("a", WrapperLanguage::XPath),
            ("b", WrapperLanguage::Lr),
            ("c", WrapperLanguage::Hlrt),
        ]);
        let registry = WrapperRegistry::from_store(store, Some(2));
        registry.get_or_fault("a").unwrap().unwrap();
        registry.get_or_fault("b").unwrap().unwrap();
        // Re-touch "a" so "b" is the LRU victim.
        registry.get_or_fault("a").unwrap().unwrap();
        let before = registry.generation();
        registry.get_or_fault("c").unwrap().unwrap();
        // Fault-in + eviction: two snapshot swaps (pinned — LRU
        // eviction also bumps snapshots).
        assert_eq!(registry.generation(), before + 2);
        assert_eq!(registry.site_keys(), ["a", "c"], "b was LRU");
        let stats = registry.residency_stats();
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.faults, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.grace_entries, 1);
    }

    #[test]
    fn grace_window_reinstates_the_same_arc() {
        let store = store_of(&[
            ("a", WrapperLanguage::XPath),
            ("b", WrapperLanguage::Lr),
            ("c", WrapperLanguage::Hlrt),
        ]);
        let registry = WrapperRegistry::from_store(store, Some(2));
        let a = registry.get_or_fault("a").unwrap().unwrap();
        registry.get_or_fault("b").unwrap().unwrap();
        registry.get_or_fault("c").unwrap().unwrap(); // evicts "a"
        assert!(registry.get("a").is_none());
        let back = registry.get_or_fault("a").unwrap().unwrap();
        assert!(
            Arc::ptr_eq(&a, &back),
            "grace reinstates the evicted Arc, caches intact"
        );
        let stats = registry.residency_stats();
        assert_eq!(stats.grace_hits, 1);
        assert_eq!(stats.faults, 3, "a grace hit is not a store fault");
    }

    #[test]
    fn remove_in_lazy_mode_evicts_but_does_not_unpublish() {
        let store = store_of(&[("a", WrapperLanguage::XPath)]);
        let registry = WrapperRegistry::from_store(store, None);
        registry.get_or_fault("a").unwrap().unwrap();
        assert!(registry.remove("a"));
        assert!(registry.get("a").is_none());
        // The store is immutable: the site faults back in pristine.
        assert!(registry.get_or_fault("a").unwrap().is_some());
        assert_eq!(registry.residency_stats().faults, 2);
    }

    #[test]
    fn get_or_fault_without_a_store_is_plain_get() {
        let registry = WrapperRegistry::new();
        registry.insert("a", wrapper(WrapperLanguage::XPath));
        assert!(registry.get_or_fault("a").unwrap().is_some());
        assert!(registry.get_or_fault("b").unwrap().is_none());
        let stats = registry.residency_stats();
        assert_eq!(stats.resident, 1);
        assert_eq!(stats.store_sites, None);
        assert_eq!(stats.faults, 0);
    }

    #[test]
    fn insert_shared_rollback_reinstall_still_bumps_generation_once() {
        let registry = WrapperRegistry::new();
        registry.insert("a", wrapper(WrapperLanguage::XPath));
        let displaced = registry.get("a").unwrap();
        registry.insert("a", wrapper(WrapperLanguage::Lr));
        assert_eq!(registry.generation(), 2);
        // Rollback path: re-installing the retained Arc is one swap.
        let generation = registry.insert_shared("a", Arc::clone(&displaced));
        assert_eq!(generation, 3);
        assert_eq!(registry.generation(), 3);
        assert!(Arc::ptr_eq(&registry.get("a").unwrap(), &displaced));
    }

    #[test]
    fn lazy_service_responses_match_resident_service() {
        let mut bundle = WrapperBundle::new();
        bundle.insert("x", wrapper(WrapperLanguage::XPath));
        bundle.insert("l", wrapper(WrapperLanguage::Lr));
        let bytes = bundle.to_binary();
        let resident = ExtractionService::new(Arc::new(WrapperRegistry::from_bundle(bundle)));
        let lazy = ExtractionService::new(Arc::new(WrapperRegistry::from_store(
            Arc::new(BundleStore::from_bytes(bytes).unwrap()),
            Some(1),
        )));
        for site in ["x", "l", "x", "l"] {
            let request = ExtractRequest::single(site, fresh_html("OMEGA GROUP"));
            assert_eq!(
                lazy.handle(&request).unwrap(),
                resident.handle(&request).unwrap(),
                "site {site}"
            );
        }
        let stats = lazy.registry().residency_stats();
        assert!(stats.resident <= 1, "cap respected: {stats:?}");
        assert!(stats.evictions >= 1);
    }

    #[test]
    fn snapshot_entries_pair_generation_with_its_contents() {
        let registry = WrapperRegistry::new();
        registry.insert("a", wrapper(WrapperLanguage::XPath));
        let (generation, entries) = registry.snapshot_entries();
        assert_eq!(generation, 1);
        assert_eq!(
            entries.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["a"]
        );
        assert_eq!(registry.entries().len(), 1);
    }

    #[test]
    fn load_bundle_replaces_wholesale() {
        let registry = WrapperRegistry::new();
        registry.insert("stale", wrapper(WrapperLanguage::XPath));
        let mut bundle = WrapperBundle::new();
        bundle.insert("fresh", wrapper(WrapperLanguage::Hlrt));
        registry.load_bundle(bundle);
        assert_eq!(registry.site_keys(), ["fresh"]);
    }

    #[test]
    fn insert_preserves_untouched_wrappers_and_their_caches() {
        let registry = WrapperRegistry::new();
        registry.insert("warm", wrapper(WrapperLanguage::XPath));
        let service = ExtractionService::new(Arc::new(registry));
        // Two structurally identical requests: bypass, record…
        for name in ["OMEGA", "SIGMA"] {
            service
                .handle(&ExtractRequest::single("warm", fresh_html(name)))
                .unwrap();
        }
        // …an unrelated insert must not reset the warm wrapper…
        service
            .registry()
            .insert("other", wrapper(WrapperLanguage::Lr));
        // …so the third request replays.
        service
            .handle(&ExtractRequest::single("warm", fresh_html("KAPPA")))
            .unwrap();
        let warm = service.registry().get("warm").unwrap();
        let (hits, _) = warm.template_cache_stats().expect("cache on by default");
        assert_eq!(hits, 1, "third same-template request must replay");
    }

    #[test]
    fn handle_routes_and_errors() {
        let registry = Arc::new(WrapperRegistry::new());
        registry.insert("dealers", wrapper(WrapperLanguage::XPath));
        let service = ExtractionService::new(Arc::clone(&registry));
        let ok = service
            .handle(&ExtractRequest::single(
                "dealers",
                fresh_html("OMEGA GROUP"),
            ))
            .unwrap();
        assert_eq!(ok.site, "dealers");
        assert_eq!(ok.language, WrapperLanguage::XPath);
        assert_eq!(ok.pages, vec![vec!["OMEGA GROUP".to_string()]]);
        assert_eq!(ok.values().collect::<Vec<_>>(), ["OMEGA GROUP"]);
        assert_eq!(
            service
                .handle(&ExtractRequest::single("nope", fresh_html("X")))
                .unwrap_err(),
            AwError::UnknownSite("nope".into())
        );
    }

    #[test]
    fn multi_page_requests_align_and_match_single_page_calls() {
        let registry = Arc::new(WrapperRegistry::new());
        registry.insert("dealers", wrapper(WrapperLanguage::XPath));
        for threads in [1, 4] {
            let service =
                ExtractionService::new(Arc::clone(&registry)).with_executor(Executor::new(threads));
            let request = ExtractRequest {
                site: "dealers".into(),
                pages: vec![
                    fresh_html("OMEGA"),
                    "<p>nothing</p>".into(),
                    fresh_html("SIGMA"),
                ],
            };
            let response = service.handle(&request).unwrap();
            assert_eq!(
                response.pages,
                vec![vec!["OMEGA".to_string()], vec![], vec!["SIGMA".to_string()]],
                "threads {threads}"
            );
            let singles: Vec<Vec<String>> = request
                .pages
                .iter()
                .map(|html| {
                    service
                        .handle(&ExtractRequest::single("dealers", html.clone()))
                        .unwrap()
                        .pages
                        .remove(0)
                })
                .collect();
            assert_eq!(response.pages, singles, "threads {threads}");
        }
    }

    #[test]
    fn stream_and_fallback_parse_paths_answer_identically() {
        let registry = Arc::new(WrapperRegistry::new());
        registry.insert("dealers", wrapper(WrapperLanguage::XPath));
        let streaming = ExtractionService::new(Arc::clone(&registry));
        let fallback = ExtractionService::new(Arc::clone(&registry)).with_stream_parse(false);
        assert!(streaming.stream_parse_enabled());
        assert!(!fallback.stream_parse_enabled());
        let request = ExtractRequest {
            site: "dealers".into(),
            pages: vec![
                fresh_html("OMEGA"),
                "<p>nothing</p>".into(),
                "   ".into(), // unparseable: empty document
            ],
        };
        let a = streaming.handle(&request).unwrap();
        let b = fallback.handle(&request).unwrap();
        assert_eq!(a, b, "parse paths must be byte-identical");
        let s = streaming.parse_stats();
        assert_eq!((s.pages, s.stream, s.fallback), (3, 3, 0));
        let f = fallback.parse_stats();
        assert_eq!((f.pages, f.stream, f.fallback), (3, 0, 3));
        assert_eq!(ParseStats::default().pages, 0);
    }

    #[test]
    fn handle_batch_matches_sequential_handles() {
        let registry = Arc::new(WrapperRegistry::new());
        registry.insert("x", wrapper(WrapperLanguage::XPath));
        registry.insert("l", wrapper(WrapperLanguage::Lr));
        let service = ExtractionService::new(Arc::clone(&registry)).with_executor(Executor::new(3));
        let requests: Vec<ExtractRequest> = (0..12)
            .map(|i| {
                let site = if i % 3 == 2 {
                    "missing"
                } else if i % 2 == 0 {
                    "x"
                } else {
                    "l"
                };
                ExtractRequest::single(site, fresh_html(&format!("NAME {i}")))
            })
            .collect();
        let batched = service.handle_batch(&requests);
        for (request, got) in requests.iter().zip(batched) {
            assert_eq!(got, service.handle(request), "site {}", request.site);
        }
    }
}
