//! # aw-sitegen — the web-publication-model simulator
//!
//! The paper evaluates on crawled corpora (330 DEALERS sites, 15 DISC
//! sites, 10 PRODUCTS sites) that cannot be re-fetched. Following the
//! substitution rule documented in `DESIGN.md`, this crate *implements the
//! paper's own generative model of the web* (§2.1): each website picks a
//! schema, a data sample and a **rendering script**, and applies the script
//! uniformly to all its pages. Structural diversity across sites and
//! uniformity within a site — the two properties wrapper induction relies
//! on — therefore hold by construction, and gold labels are recorded
//! during rendering (standing in for the authors' hand-written gold
//! rules).
//!
//! * [`dealers`] — dealer-locator listings; dictionary annotator lands at
//!   p≈0.95 / r≈0.24 like the Yahoo! Local database of §7;
//! * [`disc`] — discography album pages; track dictionary at p≈0.8 /
//!   r≈0.9 with the paper's noise sources (title tracks, review quotes);
//! * [`products`] — phone shops with a 463-model dictionary (App. B.1).

pub mod data;
pub mod dealers;
pub mod disc;
pub mod evolution;
pub mod products;
pub mod render;
pub mod template;

pub use dealers::{generate_dealers, DealersConfig, DealersDataset};
pub use disc::{generate_disc, Album, DiscConfig, DiscDataset};
pub use evolution::{epoch_html, EvolutionDataset, EvolutionEpoch, Mutation, TemplateEvolution};
pub use products::{generate_products, ProductsConfig, ProductsDataset};
pub use render::{Container, FieldLayout, ListingRecord, ListingScript, NameStyle};
pub use template::{GeneratedSite, PageBuilder, PageMarks};
