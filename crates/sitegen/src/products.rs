//! The PRODUCTS dataset (Appendix B.1): shopping sites selling cellphones.
//!
//! 10 sites; the task is extracting every phone sold. The dictionary holds
//! the model catalog of five brands (the paper compiled 463 models from
//! Wikipedia). Noise: accessory listings whose text *contains* a model
//! name ("Nokima X100 Leather Case") and promo blurbs.

use crate::data;
use crate::render::{ListingRecord, ListingScript};
use crate::template::{GeneratedSite, PageBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_products`].
#[derive(Clone, Debug)]
pub struct ProductsConfig {
    /// Number of websites (paper: 10).
    pub sites: usize,
    /// Pages per site (category/brand pages).
    pub pages_per_site: usize,
    /// Min/max phones per page.
    pub products_per_page: (usize, usize),
    /// Fraction of listed phones that are in the dictionary catalog.
    pub dict_fraction: f64,
    /// Probability a page carries an accessory row quoting a model name.
    pub accessory_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProductsConfig {
    fn default() -> Self {
        ProductsConfig {
            sites: 10,
            pages_per_site: 4,
            products_per_page: (3, 8),
            dict_fraction: 0.5,
            accessory_prob: 0.25,
            seed: 0x9800,
        }
    }
}

impl ProductsConfig {
    /// A small configuration for fast tests.
    pub fn small(sites: usize, seed: u64) -> Self {
        ProductsConfig {
            sites,
            pages_per_site: 2,
            seed,
            ..Default::default()
        }
    }
}

/// The generated dataset.
#[derive(Debug)]
pub struct ProductsDataset {
    /// The generated websites.
    pub sites: Vec<GeneratedSite>,
    /// The model-name dictionary (brand + model, 463 entries by default).
    pub dictionary: Vec<String>,
}

/// Builds the full phone catalog: dictionary models first, then unlisted
/// models the dictionary does not know.
fn catalog(total_dict: usize) -> (Vec<String>, Vec<String>) {
    let mut dict = Vec::with_capacity(total_dict);
    let mut unknown = Vec::new();
    let mut n = 0usize;
    for number in (100..1000).step_by(25) {
        for brand in data::PHONE_BRANDS {
            for series in data::PHONE_SERIES {
                let name = format!("{brand} {series}{number}");
                if n < total_dict {
                    dict.push(name);
                } else {
                    unknown.push(name);
                }
                n += 1;
            }
        }
    }
    (dict, unknown)
}

/// Generates the dataset.
pub fn generate_products(cfg: &ProductsConfig) -> ProductsDataset {
    let (dictionary, unknown) = catalog(463);
    let sites = (0..cfg.sites)
        .map(|id| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xF00D + id as u64 * 0x51ED));
            generate_site(id, cfg, &mut rng, &dictionary, &unknown)
        })
        .collect();
    ProductsDataset { sites, dictionary }
}

fn generate_site(
    id: usize,
    cfg: &ProductsConfig,
    rng: &mut StdRng,
    dictionary: &[String],
    unknown: &[String],
) -> GeneratedSite {
    let script = ListingScript::random(rng, "Shop Cell Phones", Vec::new());
    let pages = (0..cfg.pages_per_site)
        .map(|p| {
            let n = rng.gen_range(cfg.products_per_page.0..=cfg.products_per_page.1);
            let mut used: Vec<&str> = Vec::new();
            let records: Vec<ListingRecord> = (0..n)
                .map(|_| {
                    let name = loop {
                        let candidate = if rng.gen_bool(cfg.dict_fraction) {
                            dictionary.choose(rng).expect("nonempty")
                        } else {
                            unknown.choose(rng).expect("nonempty")
                        };
                        if !used.contains(&candidate.as_str()) {
                            used.push(candidate);
                            break candidate.clone();
                        }
                    };
                    product_record(rng, name)
                })
                .collect();
            let mut b = PageBuilder::new();
            script.render_page(&mut b, &format!("page {}", p + 1), &records);
            // Accessory block: contains a model name inside a longer text —
            // a Contains-mode dictionary false positive.
            if rng.gen_bool(cfg.accessory_prob) {
                let model = dictionary.choose(rng).expect("nonempty");
                b.raw("<div class='accessory'>");
                b.text(&format!("{model} Leather Case — fits perfectly"));
                b.raw("</div>");
            }
            b.finish()
        })
        .collect();
    GeneratedSite::from_pages(id, pages)
}

fn product_record(rng: &mut StdRng, name: String) -> ListingRecord {
    let storage = *[8, 16, 32, 64].choose(rng).expect("nonempty");
    let color = *["Black", "Silver", "Blue", "Red", "White"]
        .choose(rng)
        .expect("nonempty");
    ListingRecord {
        name,
        street: format!("{storage}GB, {color}"),
        city_line: None,
        phone: Some(format!("${}.99", rng.gen_range(49..899))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_annotate::{DictionaryAnnotator, MatchMode};

    #[test]
    fn dictionary_has_463_models() {
        let ds = generate_products(&ProductsConfig::small(2, 1));
        assert_eq!(ds.dictionary.len(), 463);
        assert_eq!(ds.sites.len(), 2);
    }

    #[test]
    fn gold_is_product_names() {
        let ds = generate_products(&ProductsConfig::small(3, 2));
        for s in &ds.sites {
            assert!(!s.gold().is_empty());
            for &n in s.gold() {
                let t = s.site.text_of(n).unwrap();
                assert!(
                    data::PHONE_BRANDS.iter().any(|b| t.starts_with(b)),
                    "gold node is not a phone: {t}"
                );
            }
        }
    }

    #[test]
    fn accessory_blocks_are_fp_not_gold() {
        let ds = generate_products(&ProductsConfig {
            accessory_prob: 1.0,
            ..ProductsConfig::small(2, 3)
        });
        let annotator = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let mut fp_found = false;
        for s in &ds.sites {
            let labels = annotator.annotate(&s.site);
            for l in &labels {
                if !s.gold().contains(l) {
                    fp_found = true;
                    let t = s.site.text_of(*l).unwrap();
                    assert!(t.contains("Case"), "unexpected FP: {t}");
                }
            }
        }
        assert!(fp_found, "accessory FPs should appear with prob 1.0");
    }

    #[test]
    fn annotator_has_partial_recall() {
        let ds = generate_products(&ProductsConfig::default());
        let annotator = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let (mut tp, mut gold) = (0usize, 0usize);
        for s in &ds.sites {
            let labels = annotator.annotate(&s.site);
            gold += s.gold().len();
            tp += labels.iter().filter(|l| s.gold().contains(l)).count();
        }
        let recall = tp as f64 / gold as f64;
        assert!((0.3..=0.7).contains(&recall), "recall {recall}");
    }

    #[test]
    fn deterministic() {
        let a = generate_products(&ProductsConfig::small(2, 9));
        let b = generate_products(&ProductsConfig::small(2, 9));
        assert_eq!(a.sites[1].gold(), b.sites[1].gold());
    }
}
