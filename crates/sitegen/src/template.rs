//! Page construction with gold-label tracking.
//!
//! [`PageBuilder`] accumulates HTML while recording, for every text node it
//! emits, whether that node is a *gold* extraction target (and of which
//! type). Because the same string can legitimately appear both as a gold
//! node and as noise (a title track equals its album title; a review quotes
//! a track), gold marks are stored as `(text, occurrence-index)` pairs and
//! resolved positionally against the parsed page — never by bare text
//! equality.

use aw_dom::{Document, PageNode};
use aw_induct::NodeSet;
use std::collections::HashMap;

/// Marks accumulated for one page: per type, the `(collapsed text,
/// occurrence index)` of each gold node.
#[derive(Clone, Debug, Default)]
pub struct PageMarks {
    marks: Vec<Vec<(String, usize)>>,
}

impl PageMarks {
    /// Number of gold marks of a type.
    pub fn count(&self, ty: usize) -> usize {
        self.marks.get(ty).map_or(0, Vec::len)
    }

    /// Number of mark types present.
    pub fn types(&self) -> usize {
        self.marks.len()
    }
}

/// Builds one HTML page while tracking gold text-node positions.
#[derive(Debug, Default)]
pub struct PageBuilder {
    html: String,
    /// Occurrences of each collapsed text emitted so far.
    counts: HashMap<String, usize>,
    marks: PageMarks,
}

impl PageBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw markup (tags only — must not introduce text nodes, or
    /// occurrence counting desynchronizes).
    pub fn raw(&mut self, markup: &str) {
        debug_assert!(
            markup.starts_with('<') && markup.ends_with('>'),
            "raw() is for markup; use text() for character data: {markup:?}"
        );
        self.html.push_str(markup);
    }

    /// Emits a plain (non-gold) text node.
    pub fn text(&mut self, t: &str) {
        self.emit(t);
    }

    /// Emits a text node and marks it as gold for `ty`.
    pub fn gold_text(&mut self, t: &str, ty: usize) {
        let key = self.emit(t);
        while self.marks.marks.len() <= ty {
            self.marks.marks.push(Vec::new());
        }
        let occurrence = self.counts[&key] - 1;
        self.marks.marks[ty].push((key, occurrence));
    }

    fn emit(&mut self, t: &str) -> String {
        debug_assert!(
            self.html.is_empty() || self.html.ends_with('>'),
            "adjacent text() calls would merge into one text node"
        );
        let collapsed = aw_dom::parser::collapse_whitespace(t);
        debug_assert!(!collapsed.is_empty(), "empty text node");
        self.html.push_str(t);
        *self.counts.entry(collapsed.clone()).or_insert(0) += 1;
        collapsed
    }

    /// Finishes the page, returning the HTML and the gold marks.
    pub fn finish(self) -> (String, PageMarks) {
        (self.html, self.marks)
    }
}

/// Resolves page marks against the parsed document, returning the gold
/// node set of each type for page `page_idx`.
pub fn resolve_marks(doc: &Document, page_idx: u32, marks: &PageMarks) -> Vec<NodeSet> {
    // Walk text nodes in document order, numbering occurrences per text.
    let mut occurrence: HashMap<&str, usize> = HashMap::new();
    let mut by_key: HashMap<(String, usize), PageNode> = HashMap::new();
    for id in doc.preorder_all() {
        if let Some(t) = doc.text(id) {
            let n = occurrence.entry(t).or_insert(0);
            by_key.insert((t.to_string(), *n), PageNode::new(page_idx, id));
            *n += 1;
        }
    }
    marks
        .marks
        .iter()
        .map(|type_marks| {
            type_marks
                .iter()
                .filter_map(|key| by_key.get(&(key.0.clone(), key.1)).copied())
                .collect()
        })
        .collect()
}

/// A fully generated website with gold labels.
#[derive(Debug)]
pub struct GeneratedSite {
    /// Stable site index within its dataset.
    pub id: usize,
    /// The parsed pages.
    pub site: aw_induct::Site,
    /// Gold node sets per type (index 0 = the primary extraction target).
    pub gold_types: Vec<NodeSet>,
}

impl GeneratedSite {
    /// Assembles a site from built pages, resolving all gold marks.
    pub fn from_pages(id: usize, pages: Vec<(String, PageMarks)>) -> Self {
        let n_types = pages
            .iter()
            .map(|(_, m)| m.types())
            .max()
            .unwrap_or(1)
            .max(1);
        let html: Vec<&str> = pages.iter().map(|(h, _)| h.as_str()).collect();
        let site = aw_induct::Site::from_html(&html);
        let mut gold_types = vec![NodeSet::new(); n_types];
        for (p, (_, marks)) in pages.iter().enumerate() {
            let resolved = resolve_marks(site.page(p as u32), p as u32, marks);
            for (ty, set) in resolved.into_iter().enumerate() {
                gold_types[ty].extend(set);
            }
        }
        GeneratedSite {
            id,
            site,
            gold_types,
        }
    }

    /// The primary gold set (type 0).
    pub fn gold(&self) -> &NodeSet {
        &self.gold_types[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_gold_by_occurrence() {
        let mut b = PageBuilder::new();
        b.raw("<h1>");
        b.text("Abbey Road"); // album title — NOT gold
        b.raw("</h1><ol><li>");
        b.gold_text("Abbey Road", 0); // the title track — gold
        b.raw("</li><li>");
        b.gold_text("Golden River", 0);
        b.raw("</li></ol>");
        let (html, marks) = b.finish();
        assert_eq!(marks.count(0), 2);

        let gs = GeneratedSite::from_pages(7, vec![(html, marks)]);
        let gold = gs.gold();
        assert_eq!(gold.len(), 2);
        // The gold "Abbey Road" must be the second occurrence (inside li).
        let doc = gs.site.page(0);
        for n in gold {
            let parent = doc.parent(n.node).unwrap();
            assert_eq!(doc.tag(parent), Some("li"), "gold must be the li node");
        }
    }

    #[test]
    fn multiple_types() {
        let mut b = PageBuilder::new();
        b.raw("<li>");
        b.gold_text("ACME CO", 0);
        b.raw("</li><li>");
        b.gold_text("SAN MATEO, CA 94403", 1);
        b.raw("</li><li>");
        b.text("(650) 349-3414");
        b.raw("</li>");
        let (html, marks) = b.finish();
        let gs = GeneratedSite::from_pages(0, vec![(html, marks)]);
        assert_eq!(gs.gold_types.len(), 2);
        assert_eq!(gs.gold_types[0].len(), 1);
        assert_eq!(gs.gold_types[1].len(), 1);
        assert_eq!(gs.id, 0);
    }

    #[test]
    fn pages_resolve_independently() {
        let mk = |name: &str| {
            let mut b = PageBuilder::new();
            b.raw("<div>");
            b.gold_text(name, 0);
            b.raw("</div>");
            b.finish()
        };
        let gs = GeneratedSite::from_pages(1, vec![mk("A"), mk("B"), mk("A")]);
        assert_eq!(gs.gold().len(), 3);
        let pages: Vec<u32> = gs.gold().iter().map(|n| n.page).collect();
        assert_eq!(pages, vec![0, 1, 2]);
    }

    #[test]
    fn whitespace_collapse_matches_parser() {
        let mut b = PageBuilder::new();
        b.raw("<p>");
        b.gold_text("TWO   SPACES\n HERE", 0);
        b.raw("</p>");
        let gs = GeneratedSite::from_pages(0, vec![b.finish()]);
        assert_eq!(gs.gold().len(), 1);
        let n = *gs.gold().iter().next().unwrap();
        assert_eq!(gs.site.text_of(n), Some("TWO SPACES HERE"));
    }
}
