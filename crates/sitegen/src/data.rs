//! Word pools for the synthetic datasets.
//!
//! The paper's corpora (DEALERS, DISC, PRODUCTS) are crawled websites we
//! cannot fetch; per the substitution rule in DESIGN.md we regenerate them
//! from the paper's own web-publication model (§2.1): pick a schema, pick
//! data, pick a rendering script. These pools supply the data part with
//! enough combinatorial variety that names rarely collide.

/// Town-ish first words for business names ("ALBANY Industries" style).
pub const TOWN_WORDS: &[&str] = &[
    "ALBANY",
    "MADISON",
    "OAKDALE",
    "RIVERTON",
    "FAIRVIEW",
    "GREENWOOD",
    "BRISTOL",
    "CLINTON",
    "GEORGETOWN",
    "SPRINGFIELD",
    "FRANKLIN",
    "SALEM",
    "DAYTON",
    "ARLINGTON",
    "ASHLAND",
    "BURLINGTON",
    "CAMDEN",
    "DOVER",
    "EASTON",
    "FAIRFIELD",
    "GLENDALE",
    "HAMPTON",
    "HUDSON",
    "JACKSON",
    "KINGSTON",
    "LEBANON",
    "MILFORD",
    "NEWPORT",
    "OXFORD",
    "PORTLAND",
    "QUINCY",
    "RICHMOND",
    "SHELBY",
    "TRENTON",
    "UNION",
    "VERNON",
    "WARREN",
    "WINCHESTER",
    "YORK",
    "CEDARVILLE",
    "ELMWOOD",
    "PINEHURST",
    "MAPLEWOOD",
    "LAKESIDE",
    "HILLCREST",
    "WESTBROOK",
    "NORTHGATE",
    "SOUTHPORT",
    "EASTLAKE",
    "WOODLAND",
    "PORTER",
    "STANLEY",
    "HELLER",
    "LULLABY",
    "KIDDIE",
    "SHERRILL",
    "ROYAL",
    "CRESCENT",
    "SUMMIT",
    "HARBOR",
];

/// Business categories.
pub const CATEGORY_WORDS: &[&str] = &[
    "FURNITURE",
    "APPLIANCE",
    "ELECTRONICS",
    "HARDWARE",
    "LIGHTING",
    "FLOORING",
    "KITCHENS",
    "BEDDING",
    "CABINETS",
    "INTERIORS",
    "GALLERY",
    "DESIGN",
    "HOME CENTER",
    "TRADING",
    "SUPPLY",
    "OUTFITTERS",
    "DEPOT",
    "WAREHOUSE",
    "SHOWROOM",
    "STUDIO",
    "WORKSHOP",
    "EMPORIUM",
    "MERCANTILE",
    "OUTLET",
];

/// Legal suffixes; ".Inc"-style words the paper calls out as name markers.
pub const SUFFIX_WORDS: &[&str] = &[
    "", "", "", " CO.", " INC.", " LLC", " & SONS", " BROS.", " GROUP", " SHOP",
];

/// Street name stems.
pub const STREET_WORDS: &[&str] = &[
    "Main St.",
    "Oak Ave.",
    "Elm St.",
    "Maple Dr.",
    "Pine Rd.",
    "Cedar Ln.",
    "Market St.",
    "Church St.",
    "High St.",
    "Park Ave.",
    "2nd Ave.",
    "3rd St.",
    "Washington Blvd.",
    "Lincoln Way",
    "Jefferson Rd.",
    "Mill Rd.",
    "River Rd.",
    "Lake Dr.",
    "Sunset Blvd.",
    "Hwy. 30 West",
    "Route 9",
    "Post Rd.",
    "Commerce Pkwy.",
    "Industrial Dr.",
];

/// City/state pairs for address lines.
pub const CITY_STATE: &[(&str, &str)] = &[
    ("NEW ALBANY", "MS"),
    ("WOODLAND", "MS"),
    ("TUPELO", "MS"),
    ("SAN MATEO", "CA"),
    ("SAN JOSE", "CA"),
    ("SAN BRUNO", "CA"),
    ("SAN RAFAEL", "CA"),
    ("AUSTIN", "TX"),
    ("DALLAS", "TX"),
    ("MEMPHIS", "TN"),
    ("NASHVILLE", "TN"),
    ("ATLANTA", "GA"),
    ("DENVER", "CO"),
    ("BOISE", "ID"),
    ("PORTLAND", "OR"),
    ("SEATTLE", "WA"),
    ("MADISON", "WI"),
    ("COLUMBUS", "OH"),
    ("ALBANY", "NY"),
    ("BUFFALO", "NY"),
];

/// Words for track-title generation.
pub const TRACK_ADJ: &[&str] = &[
    "Midnight", "Golden", "Broken", "Silent", "Electric", "Crimson", "Lonely", "Wild", "Faded",
    "Restless", "Velvet", "Hollow", "Burning", "Frozen", "Distant", "Gentle", "Savage", "Tender",
    "Wicked", "Shining",
];

/// Nouns for track-title generation.
pub const TRACK_NOUN: &[&str] = &[
    "Train", "River", "Heart", "Road", "Sky", "Dream", "Mirror", "Garden", "Stranger", "Shadow",
    "Harbor", "Window", "Letter", "Dancer", "Season", "Thunder", "Whisper", "Horizon", "Lantern",
    "Echo",
];

/// Optional track-title tails.
pub const TRACK_TAIL: &[&str] = &[
    "",
    "",
    "",
    " (Reprise)",
    " (Live)",
    " Pt. II",
    " Blues",
    " Serenade",
    " Lullaby",
    " in Blue",
    " at Dawn",
    " Goodbye",
];

/// Artist surname pool for album credits.
pub const ARTIST_NAMES: &[&str] = &[
    "The O'Neill Brothers",
    "Michelle Suesens",
    "Danielle Woerner",
    "The Harbor Lights",
    "Frank Castellano",
    "Nina Delacroix",
    "The Wandering Sons",
    "Eliza Thornton",
    "Marcus Reed Trio",
    "The Velvet Foxes",
    "Clara Boswell",
    "Johnny Two Rivers",
    "The Paper Kites Club",
    "Omar Bellamy",
    "Sister June",
];

/// Phone brands for the PRODUCTS domain (five, as in Appendix B.1).
pub const PHONE_BRANDS: &[&str] = &["Nokima", "Samsang", "Motorale", "Sanyonic", "Ericsun"];

/// Model series letters per brand.
pub const PHONE_SERIES: &[&str] = &["X", "E", "N", "C", "S", "G", "Z", "Pro", "Slide", "Flip"];

/// Review/comment sentence templates for DISC pages. `{}` is replaced by a
/// track or album title — the source of exact-match false positives.
pub const REVIEW_TEMPLATES: &[&str] = &[
    "I can't stop playing {} on repeat, absolute classic.",
    "The production on {} feels ahead of its time.",
    "Saw them perform {} live last summer, unforgettable.",
    "{} is easily the weakest cut here, skip it.",
    "My dad used to hum {} every morning.",
];

/// Promo sentences for DEALERS chrome; `{}` is replaced by a brand name —
/// the source of dictionary false positives in navigation/ads.
pub const PROMO_TEMPLATES: &[&str] = &[
    "Visit {} for the best deals this season!",
    "Now carrying the full {} catalog.",
    "{} clearance event ends Sunday.",
    "Ask about financing at {} locations near you.",
];

/// Filler sidebar-item titles for DEALERS pages. The sidebar is a
/// structured list (title + blurb + link per item), so a false-positive
/// seed inside it generalizes to a *structurally good* decoy list — the
/// reason the publication term alone cannot rank wrappers (§7.3).
pub const SIDEBAR_TITLES: &[&str] = &[
    "Holiday hours announced",
    "New showroom opening",
    "Summer catalog is here",
    "Join our rewards club",
    "Free delivery this month",
    "Design tips & tricks",
    "Meet our staff",
    "Trade-in program",
];

/// Filler sidebar blurbs.
pub const SIDEBAR_BLURBS: &[&str] = &[
    "Check back every week for updates.",
    "Limited time only, conditions apply.",
    "Our experts are here to help.",
    "Visit the store nearest you.",
    "Sign up online or in person.",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_unique() {
        fn check(name: &str, pool: &[&str]) {
            assert!(!pool.is_empty(), "{name} empty");
            // Allow deliberate duplicates only in weighted pools.
            if name != "SUFFIX_WORDS" && name != "TRACK_TAIL" {
                let set: std::collections::HashSet<_> = pool.iter().collect();
                assert_eq!(set.len(), pool.len(), "{name} has duplicates");
            }
        }
        check("TOWN_WORDS", TOWN_WORDS);
        check("CATEGORY_WORDS", CATEGORY_WORDS);
        check("SUFFIX_WORDS", SUFFIX_WORDS);
        check("STREET_WORDS", STREET_WORDS);
        check("TRACK_ADJ", TRACK_ADJ);
        check("TRACK_NOUN", TRACK_NOUN);
        check("TRACK_TAIL", TRACK_TAIL);
        check("ARTIST_NAMES", ARTIST_NAMES);
        check("PHONE_BRANDS", PHONE_BRANDS);
        check("PHONE_SERIES", PHONE_SERIES);
    }

    #[test]
    fn name_space_is_large() {
        // Enough combinations that per-page names rarely collide.
        let combos = TOWN_WORDS.len() * CATEGORY_WORDS.len() * SUFFIX_WORDS.len();
        assert!(combos > 10_000, "{combos}");
    }

    #[test]
    fn templates_have_placeholder() {
        for t in REVIEW_TEMPLATES.iter().chain(PROMO_TEMPLATES) {
            assert!(t.contains("{}"), "{t}");
        }
    }
}
