//! The DEALERS dataset (§7): dealer-locator pages for 330 businesses.
//!
//! Each synthetic site mimics one business's store-locator: a fixed
//! rendering script applied to several per-zipcode pages of dealer
//! listings. The companion dictionary covers a configurable fraction of
//! dealer names (the paper's Yahoo! Local database gave the annotator
//! recall 0.24), and sidebar promos quoting dictionary names provide the
//! false positives that put precision near 0.95.

use crate::data;
use crate::render::{ListingRecord, ListingScript};
use crate::template::{GeneratedSite, PageBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_dealers`].
#[derive(Clone, Debug)]
pub struct DealersConfig {
    /// Number of websites (paper: 330).
    pub sites: usize,
    /// Pages (zipcodes) per site.
    pub pages_per_site: usize,
    /// Min/max records per page.
    pub records_per_page: (usize, usize),
    /// Fraction of dealer names drawn from the dictionary (≈ annotator
    /// recall; paper: 0.24).
    pub dict_fraction: f64,
    /// Probability that a site carries a promo quoting a dictionary name
    /// on one of its pages (false-positive source; tunes annotator
    /// precision and the fraction of sites whose NAIVE wrapper is
    /// poisoned).
    pub promo_prob: f64,
    /// Probability that a street number has five digits (zip-annotator
    /// false positives, Appendix A).
    pub five_digit_street_prob: f64,
    /// Probability that a record's street is named after a dictionary
    /// brand ("12 PORTER FURNITURE Plaza") — §7's "errors stem from
    /// business names matching street addresses". These FPs live in a
    /// structurally good list (the street column), which is what makes
    /// the publication term alone (NTW-X) insufficient (§7.3).
    pub street_brand_prob: f64,
    /// Force every record to carry all optional fields (phone), so that
    /// — together with a fixed `records_per_page` — every page of a site
    /// shares one structural template fingerprint. Models full-roster
    /// paginated listings; used by the template-replay benchmarks.
    pub uniform_records: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DealersConfig {
    fn default() -> Self {
        DealersConfig {
            sites: 330,
            pages_per_site: 5,
            records_per_page: (2, 8),
            dict_fraction: 0.24,
            promo_prob: 0.35,
            five_digit_street_prob: 0.12,
            street_brand_prob: 0.015,
            uniform_records: false,
            seed: 0xDEA1,
        }
    }
}

impl DealersConfig {
    /// A small configuration for fast tests and examples.
    pub fn small(sites: usize, seed: u64) -> Self {
        DealersConfig {
            sites,
            pages_per_site: 3,
            seed,
            ..Default::default()
        }
    }
}

/// The generated dataset: sites plus the annotator dictionary.
#[derive(Debug)]
pub struct DealersDataset {
    /// The generated websites.
    pub sites: Vec<GeneratedSite>,
    /// Business names known to the dictionary annotator.
    pub dictionary: Vec<String>,
}

/// Size of the dictionary name pool.
const DICT_POOL: usize = 600;

/// Generates the dataset.
pub fn generate_dealers(cfg: &DealersConfig) -> DealersDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Build a global pool of unique names; the first DICT_POOL are the
    // annotator's dictionary.
    let pool = name_pool(&mut rng);
    let dictionary: Vec<String> = pool[..DICT_POOL].to_vec();
    let unknown: &[String] = &pool[DICT_POOL..];

    let sites = (0..cfg.sites)
        .map(|id| {
            let mut srng = StdRng::seed_from_u64(cfg.seed ^ hash_site(id));
            generate_site(id, cfg, &mut srng, &dictionary, unknown)
        })
        .collect();
    DealersDataset { sites, dictionary }
}

fn hash_site(id: usize) -> u64 {
    // splitmix64 so per-site streams are independent of site count.
    let mut z = id as u64 + 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn name_pool(rng: &mut StdRng) -> Vec<String> {
    let mut names: Vec<String> = Vec::with_capacity(4000);
    'outer: for town in data::TOWN_WORDS {
        for cat in data::CATEGORY_WORDS {
            for suf in ["", " CO.", " INC."] {
                names.push(format!("{town} {cat}{suf}"));
                if names.len() >= 4000 {
                    break 'outer;
                }
            }
        }
    }
    names.shuffle(rng);
    names.dedup();
    names
}

fn generate_site(
    id: usize,
    cfg: &DealersConfig,
    rng: &mut StdRng,
    dictionary: &[String],
    unknown: &[String],
) -> GeneratedSite {
    // A promo quoting a dictionary name on ONE page → annotator false
    // positive that poisons NAIVE induction on this site.
    let promo: Option<(usize, String)> = rng.gen_bool(cfg.promo_prob).then(|| {
        let brand = dictionary.choose(rng).expect("dict nonempty");
        let template = data::PROMO_TEMPLATES.choose(rng).expect("nonempty");
        (
            rng.gen_range(0..cfg.pages_per_site),
            template.replacen("{}", brand, 1),
        )
    });
    let script = ListingScript::random(rng, "Dealer Locator", Vec::new());

    let pages = (0..cfg.pages_per_site)
        .map(|page_idx| {
            let zip = format!("{:05}", rng.gen_range(10000..99999));
            let n_records = rng.gen_range(cfg.records_per_page.0..=cfg.records_per_page.1);
            let mut used: Vec<&str> = Vec::new();
            let records: Vec<ListingRecord> = (0..n_records)
                .map(|_| {
                    let name = loop {
                        let candidate = if rng.gen_bool(cfg.dict_fraction) {
                            dictionary.choose(rng).expect("nonempty")
                        } else {
                            unknown.choose(rng).expect("nonempty")
                        };
                        if !used.contains(&candidate.as_str()) {
                            used.push(candidate);
                            break candidate.clone();
                        }
                    };
                    record(rng, name, &zip, cfg, dictionary)
                })
                .collect();
            let mut b = PageBuilder::new();
            script.render_page(&mut b, &format!("stores near {zip}"), &records);
            if let Some((promo_page, text)) = &promo {
                if *promo_page == page_idx {
                    render_sidebar(&mut b, rng, text);
                }
            }
            b.finish()
        })
        .collect();
    GeneratedSite::from_pages(id, pages)
}

/// Renders a promo sidebar: a structured list of (title, blurb, link)
/// items, one of which (`fp_title`) quotes a dictionary brand. The decoy
/// list is structurally as regular as the dealer listing itself.
fn render_sidebar(b: &mut PageBuilder, rng: &mut StdRng, fp_title: &str) {
    let mut titles: Vec<&str> = data::SIDEBAR_TITLES.to_vec();
    titles.shuffle(rng);
    let n_items = rng.gen_range(4..=6usize).min(titles.len());
    let fp_slot = rng.gen_range(0..n_items);
    b.raw("<div class='sidebar'><ul>");
    for (i, title) in titles.iter().take(n_items).enumerate() {
        b.raw("<li><b>");
        b.text(if i == fp_slot { fp_title } else { title });
        b.raw("</b><br>");
        b.text(data::SIDEBAR_BLURBS.choose(rng).expect("nonempty"));
        b.raw("<br><a href='#'>");
        b.text("Read more");
        b.raw("</a></li>");
    }
    b.raw("</ul></div>");
}

fn record(
    rng: &mut StdRng,
    name: String,
    zip: &str,
    cfg: &DealersConfig,
    dictionary: &[String],
) -> ListingRecord {
    let number = if rng.gen_bool(cfg.five_digit_street_prob) {
        rng.gen_range(10000..40000)
    } else {
        rng.gen_range(1..9999)
    };
    let street = if rng.gen_bool(cfg.street_brand_prob) {
        // Street named after a brand → dictionary false positive.
        let brand = dictionary.choose(rng).expect("nonempty");
        let suffix = *["Plaza", "Sq.", "Way", "Center"]
            .choose(rng)
            .expect("nonempty");
        format!("{number} {brand} {suffix}")
    } else {
        format!(
            "{number} {}",
            data::STREET_WORDS.choose(rng).expect("nonempty")
        )
    };
    let (city, state) = data::CITY_STATE.choose(rng).expect("nonempty");
    // The draw happens unconditionally so `uniform_records` does not
    // perturb the RNG stream of the default configuration.
    let has_phone = rng.gen_bool(0.85) || cfg.uniform_records;
    let phone = has_phone.then(|| {
        format!(
            "({}) {}-{}",
            rng.gen_range(201..989),
            rng.gen_range(200..999),
            rng.gen_range(1000..9999)
        )
    });
    ListingRecord {
        name,
        street,
        city_line: Some(format!("{city}, {state} {zip}")),
        phone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_annotate::{DictionaryAnnotator, MatchMode};

    #[test]
    fn generates_requested_site_count() {
        let ds = generate_dealers(&DealersConfig::small(6, 11));
        assert_eq!(ds.sites.len(), 6);
        assert_eq!(ds.dictionary.len(), DICT_POOL);
        for (i, s) in ds.sites.iter().enumerate() {
            assert_eq!(s.id, i);
            assert_eq!(s.site.page_count(), 3);
            assert!(!s.gold().is_empty());
            assert_eq!(s.gold_types.len(), 2, "names + zip lines");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_dealers(&DealersConfig::small(3, 5));
        let b = generate_dealers(&DealersConfig::small(3, 5));
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.gold(), y.gold());
            assert_eq!(
                aw_dom::serialize(x.site.page(0)),
                aw_dom::serialize(y.site.page(0))
            );
        }
        let c = generate_dealers(&DealersConfig::small(3, 6));
        assert_ne!(
            aw_dom::serialize(a.sites[0].site.page(0)),
            aw_dom::serialize(c.sites[0].site.page(0))
        );
    }

    #[test]
    fn annotator_operating_point_is_near_paper() {
        // Measured over the dataset, the dictionary annotator should land
        // near p≈0.95, r≈0.24 (±generous tolerance on a small sample).
        let ds = generate_dealers(&DealersConfig::small(40, 7));
        let annotator = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let (mut tp, mut fp, mut gold_total) = (0usize, 0usize, 0usize);
        for s in &ds.sites {
            let labels = annotator.annotate(&s.site);
            gold_total += s.gold().len();
            for l in &labels {
                if s.gold().contains(l) {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        let recall = tp as f64 / gold_total as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        assert!((0.15..=0.35).contains(&recall), "recall {recall}");
        assert!(precision >= 0.85, "precision {precision}");
    }

    #[test]
    fn gold_zip_lines_contain_zipcodes() {
        let ds = generate_dealers(&DealersConfig::small(3, 9));
        for s in &ds.sites {
            for &n in &s.gold_types[1] {
                let t = s.site.text_of(n).unwrap();
                assert!(aw_annotate::contains_zipcode(t), "{t}");
            }
        }
    }

    #[test]
    fn uniform_records_yield_one_template_per_site() {
        let ds = generate_dealers(&DealersConfig {
            sites: 4,
            pages_per_site: 4,
            records_per_page: (5, 5),
            promo_prob: 0.0,
            uniform_records: true,
            ..DealersConfig::default()
        });
        for s in &ds.sites {
            let fps: std::collections::HashSet<u64> = (0..s.site.page_count() as u32)
                .map(|p| s.site.page(p).index().template_fingerprint())
                .collect();
            assert_eq!(fps.len(), 1, "site {} pages diverge structurally", s.id);
        }
    }

    /// Golden FNV-1a of the `small(2, 5)` corpus (see the pin test).
    const GOLDEN_SMALL_2_5: u64 = 0x6187_3463_2ce2_7f08;

    #[test]
    fn default_corpus_byte_stream_is_pinned() {
        // The default corpus must stay byte-stable across refactors: the
        // `uniform_records` knob was added by drawing its gate
        // unconditionally so existing seeds regenerate identical data.
        // This golden hash (FNV-1a over every serialized page of
        // `small(2, 5)`) catches any change that perturbs the per-site
        // RNG stream — e.g. short-circuiting `rng.gen_bool(0.85)` behind
        // the knob, or reordering draws in `record()`. Update it only
        // when regenerating corpora is the *intent*.
        let ds = generate_dealers(&DealersConfig::small(2, 5));
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for s in &ds.sites {
            for p in 0..s.site.page_count() as u32 {
                for b in aw_dom::serialize(s.site.page(p)).bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
        }
        assert_eq!(h, GOLDEN_SMALL_2_5, "default corpus drifted: 0x{h:016x}");
    }

    #[test]
    fn names_unique_within_page() {
        let ds = generate_dealers(&DealersConfig::small(5, 13));
        for s in &ds.sites {
            for p in 0..s.site.page_count() as u32 {
                let names: Vec<&str> = s
                    .gold()
                    .iter()
                    .filter(|n| n.page == p)
                    .map(|&n| s.site.text_of(n).unwrap())
                    .collect();
                let set: std::collections::HashSet<_> = names.iter().collect();
                assert_eq!(set.len(), names.len(), "duplicate name on page {p}");
            }
        }
    }
}
