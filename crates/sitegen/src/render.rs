//! Rendering scripts for listing-style pages (DEALERS, PRODUCTS).
//!
//! §2.1's generative model: a site picks one *rendering script* and applies
//! it to every page. [`ListingScript::random`] draws a script — container
//! strategy, per-field markup, page chrome — so that structure is uniform
//! *within* a site and diverse *across* sites, the two properties wrapper
//! induction exploits.

use crate::template::PageBuilder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A small stable hash of a string, used for per-record URLs.
fn string_id(s: &str) -> u32 {
    let mut h: u32 = 2166136261;
    for b in s.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    h % 100_000
}

/// Gold-type indices used by listing pages.
pub const TYPE_NAME: usize = 0;
/// Zip/address-line type (multi-type extraction, Appendix A).
pub const TYPE_ZIP: usize = 1;

/// How records are laid out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Container {
    /// `<table><tr>…</tr></table>`.
    Table,
    /// `<div class=…><div>…</div></div>`.
    DivBlocks,
    /// `<ul><li>…</li></ul>`.
    Ul,
}

/// How the name field is marked up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NameStyle {
    /// Wrapped in a formatting tag: `<u>NAME</u>`, `<b>`, `<a>`, …
    WrapTag(&'static str),
    /// A link with a **per-record** href (`<a href='/dealer/1234'>`): the
    /// varying attribute value wrecks LR's character contexts while xpath
    /// tag features are untouched — the reason a perfect LR wrapper does
    /// not exist for every site (§7.2, Figure 2(e) discussion).
    Link,
    /// `<span class='…'>NAME</span>`.
    ClassedSpan(String),
    /// Bare text (distinguishable only by position).
    Bare,
}

/// How a record's fields are separated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldLayout {
    /// All fields in one cell, separated by `<br>`.
    BrSeparated,
    /// Each field in its own cell/sub-element.
    OwnCells,
}

/// One business/product record of a listing page.
#[derive(Clone, Debug)]
pub struct ListingRecord {
    /// The extraction target (business or product name).
    pub name: String,
    /// Street line (products: capacity/color line).
    pub street: String,
    /// "CITY, ST 12345" line; contains the zip (type 1 gold).
    pub city_line: Option<String>,
    /// Phone (or price) line.
    pub phone: Option<String>,
}

/// A complete per-site rendering script.
#[derive(Clone, Debug)]
pub struct ListingScript {
    /// Record container strategy.
    pub container: Container,
    /// Class on the listing container (e.g. `dealerlinks`).
    pub container_class: String,
    /// Name markup.
    pub name_style: NameStyle,
    /// Field separation.
    pub layout: FieldLayout,
    /// Navigation labels for the chrome.
    pub nav_items: Vec<String>,
    /// Page heading (rendered per page with a suffix).
    pub heading: String,
    /// Promo/advert sentences in a sidebar (false-positive source).
    pub promos: Vec<String>,
    /// Footer sentence.
    pub footer: String,
    /// Class of an extra `<div>` wrapped around the whole page body
    /// (site-churn simulation; `None` for the unevolved script).
    pub outer_wrap: Option<String>,
    /// Class of an extra `<div>` wrapped around each record's name cell
    /// content — the "wrapper-`<div>` insertion" churn that changes the
    /// gold node's ancestor chain.
    pub name_cell_wrap: Option<String>,
    /// Render the street field before the name (field-reordering churn).
    pub fields_reversed: bool,
}

impl ListingScript {
    /// Draws a random script. `promos` become sidebar text verbatim.
    pub fn random(rng: &mut StdRng, heading: &str, promos: Vec<String>) -> Self {
        let container = *[Container::Table, Container::DivBlocks, Container::Ul]
            .choose(rng)
            .expect("nonempty");
        let name_style = match rng.gen_range(0..12) {
            0..=4 => NameStyle::WrapTag(
                ["u", "b", "strong", "h3", "em"]
                    .choose(rng)
                    .expect("nonempty"),
            ),
            5..=6 => NameStyle::Link,
            7..=9 => NameStyle::ClassedSpan(
                ["bizname", "storename", "title", "result-name"]
                    .choose(rng)
                    .expect("nonempty")
                    .to_string(),
            ),
            _ => NameStyle::Bare,
        };
        // Bare names are only xpath-separable in OwnCells layout; allow the
        // inseparable Bare+BrSeparated combination rarely (imperfect sites
        // exist in the real corpora too — LR's ceiling in Fig. 2(e)).
        // The branches are deliberately identical: Bare sites take the
        // OwnCells branch with 0.8 + 0.2·0.5 = 0.9 total probability.
        #[allow(clippy::if_same_then_else)]
        let layout = if matches!(name_style, NameStyle::Bare) && rng.gen_bool(0.8) {
            FieldLayout::OwnCells
        } else if rng.gen_bool(0.5) {
            FieldLayout::OwnCells
        } else {
            FieldLayout::BrSeparated
        };
        let container_class = [
            "dealerlinks",
            "results",
            "store-list",
            "locator",
            "listing",
            "items",
        ]
        .choose(rng)
        .expect("nonempty")
        .to_string();
        let nav_items = [
            "Home",
            "About Us",
            "Our Products",
            "Dealer Locator",
            "Contact Us",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        ListingScript {
            container,
            container_class,
            name_style,
            layout,
            nav_items,
            heading: heading.to_string(),
            promos,
            footer: "© 2010 All rights reserved. Web design by Computing Technologies".into(),
            outer_wrap: None,
            name_cell_wrap: None,
            fields_reversed: false,
        }
    }

    /// True when a perfect xpath wrapper for names exists under this
    /// script (see `random` for the one inseparable combination).
    pub fn xpath_separable(&self) -> bool {
        !(matches!(self.name_style, NameStyle::Bare)
            && matches!(self.layout, FieldLayout::BrSeparated))
    }

    /// True when a perfect LR wrapper plausibly exists: per-record link
    /// hrefs leave LR with no stable left delimiter.
    pub fn lr_separable(&self) -> bool {
        !matches!(self.name_style, NameStyle::Link) && self.xpath_separable()
    }

    /// Renders one page of records into a [`PageBuilder`].
    pub fn render_page(&self, b: &mut PageBuilder, page_label: &str, records: &[ListingRecord]) {
        if let Some(class) = &self.outer_wrap {
            b.raw(&format!("<div class='{class}'>"));
        }
        // Chrome: nav + heading.
        b.raw("<div class='nav'>");
        for item in &self.nav_items {
            b.raw("<a href='#'>");
            b.text(item);
            b.raw("</a>");
        }
        b.raw("</div><h1>");
        b.text(&format!("{} — {}", self.heading, page_label));
        b.raw("</h1>");

        // Promos (sidebar) — these sentences may contain dictionary names.
        if !self.promos.is_empty() {
            b.raw("<div class='promo'>");
            for (i, p) in self.promos.iter().enumerate() {
                if i > 0 {
                    b.raw("<br>");
                }
                b.text(p);
            }
            b.raw("</div>");
        }

        // The listing itself.
        let (open, close) = match self.container {
            Container::Table => (
                format!("<table class='{}'>", self.container_class),
                "</table>".to_string(),
            ),
            Container::DivBlocks => (
                format!("<div class='{}'>", self.container_class),
                "</div>".to_string(),
            ),
            Container::Ul => (
                format!("<ul class='{}'>", self.container_class),
                "</ul>".to_string(),
            ),
        };
        b.raw(&open);
        for rec in records {
            self.render_record(b, rec);
        }
        b.raw(&close);

        // Footer.
        b.raw("<div class='footer'>");
        b.text(&self.footer);
        b.raw("</div>");
        if self.outer_wrap.is_some() {
            b.raw("</div>");
        }
    }

    fn render_record(&self, b: &mut PageBuilder, rec: &ListingRecord) {
        let (rec_open, rec_close, cell_open, cell_close): (&str, &str, &str, &str) =
            match self.container {
                Container::Table => ("<tr>", "</tr>", "<td>", "</td>"),
                Container::DivBlocks => ("<div class='rec'>", "</div>", "<div>", "</div>"),
                Container::Ul => ("<li>", "</li>", "<span>", "</span>"),
            };
        b.raw(rec_open);
        match self.layout {
            FieldLayout::OwnCells => {
                let name_cell = |s: &Self, b: &mut PageBuilder| {
                    b.raw(cell_open);
                    s.render_wrapped_name(b, &rec.name);
                    b.raw(cell_close);
                };
                let street_cell = |b: &mut PageBuilder| {
                    b.raw(cell_open);
                    b.text(&rec.street);
                    b.raw(cell_close);
                };
                if self.fields_reversed {
                    street_cell(b);
                    name_cell(self, b);
                } else {
                    name_cell(self, b);
                    street_cell(b);
                }
                if let Some(city) = &rec.city_line {
                    b.raw(cell_open);
                    b.gold_text(city, TYPE_ZIP);
                    b.raw(cell_close);
                }
                if let Some(phone) = &rec.phone {
                    b.raw(cell_open);
                    b.text(phone);
                    b.raw(cell_close);
                }
            }
            FieldLayout::BrSeparated => {
                b.raw(cell_open);
                if self.fields_reversed {
                    b.text(&rec.street);
                    b.raw("<br>");
                    self.render_wrapped_name(b, &rec.name);
                } else {
                    self.render_wrapped_name(b, &rec.name);
                    b.raw("<br>");
                    b.text(&rec.street);
                }
                if let Some(city) = &rec.city_line {
                    b.raw("<br>");
                    b.gold_text(city, TYPE_ZIP);
                }
                if let Some(phone) = &rec.phone {
                    b.raw("<br>");
                    b.text(phone);
                }
                b.raw(cell_close);
            }
        }
        b.raw(rec_close);
    }

    /// [`ListingScript::render_name`], plus the optional churn-injected
    /// wrapper `<div>` around the name markup.
    fn render_wrapped_name(&self, b: &mut PageBuilder, name: &str) {
        match &self.name_cell_wrap {
            Some(class) => {
                b.raw(&format!("<div class='{class}'>"));
                self.render_name(b, name);
                b.raw("</div>");
            }
            None => self.render_name(b, name),
        }
    }

    fn render_name(&self, b: &mut PageBuilder, name: &str) {
        match &self.name_style {
            NameStyle::WrapTag(t) => {
                b.raw(&format!("<{t}>"));
                b.gold_text(name, TYPE_NAME);
                b.raw(&format!("</{t}>"));
            }
            NameStyle::Link => {
                // Per-record href — stable per name, unique per record.
                b.raw(&format!("<a href='/dealer/d{}'>", string_id(name)));
                b.gold_text(name, TYPE_NAME);
                b.raw("</a>");
            }
            NameStyle::ClassedSpan(class) => {
                b.raw(&format!("<span class='{class}'>"));
                b.gold_text(name, TYPE_NAME);
                b.raw("</span>");
            }
            NameStyle::Bare => b.gold_text(name, TYPE_NAME),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::GeneratedSite;
    use rand::SeedableRng;

    fn record(i: usize) -> ListingRecord {
        ListingRecord {
            name: format!("ACME STORE {i}"),
            street: format!("{i} Elm St."),
            city_line: Some(format!("SAN MATEO, CA 9440{i}")),
            phone: Some("(650) 349-3414".into()),
        }
    }

    fn build_site(script: &ListingScript, pages: usize, recs: usize) -> GeneratedSite {
        let built: Vec<_> = (0..pages)
            .map(|p| {
                let mut b = PageBuilder::new();
                let records: Vec<_> = (0..recs).map(|i| record(p * recs + i)).collect();
                script.render_page(&mut b, &format!("zip {p}"), &records);
                b.finish()
            })
            .collect();
        GeneratedSite::from_pages(0, built)
    }

    #[test]
    fn every_script_produces_resolvable_gold() {
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let script = ListingScript::random(&mut rng, "Dealer Locator", vec![]);
            let gs = build_site(&script, 3, 4);
            assert_eq!(
                gs.gold_types[TYPE_NAME].len(),
                12,
                "seed {seed}: {script:?}"
            );
            assert_eq!(gs.gold_types[TYPE_ZIP].len(), 12, "seed {seed}");
            for &n in gs.gold() {
                let t = gs.site.text_of(n).unwrap();
                assert!(t.starts_with("ACME STORE"), "seed {seed}: {t}");
            }
        }
    }

    #[test]
    fn structure_uniform_within_site() {
        let mut rng = StdRng::seed_from_u64(3);
        let script = ListingScript::random(&mut rng, "Stores", vec![]);
        let gs = build_site(&script, 2, 3);
        // Every gold name node must share identical ancestor tag chains.
        let chains: std::collections::HashSet<Vec<String>> = gs
            .gold()
            .iter()
            .map(|&n| {
                let (doc, id) = gs.site.resolve(n);
                doc.ancestors(id)
                    .filter_map(|a| doc.tag(a).map(str::to_string))
                    .collect()
            })
            .collect();
        assert_eq!(chains.len(), 1, "{chains:?}");
    }

    #[test]
    fn scripts_differ_across_sites() {
        let mut variants = std::collections::HashSet::new();
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = ListingScript::random(&mut rng, "X", vec![]);
            variants.insert(format!(
                "{:?}/{:?}/{:?}",
                s.container, s.name_style, s.layout
            ));
        }
        assert!(
            variants.len() >= 8,
            "only {} distinct scripts",
            variants.len()
        );
    }

    #[test]
    fn promos_rendered_as_text_nodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let script = ListingScript::random(
            &mut rng,
            "Stores",
            vec!["Visit ACME STORE 1 for deals!".into()],
        );
        let gs = build_site(&script, 1, 2);
        // The promo node exists and is NOT gold despite containing a name.
        let promo = gs.site.find_text("Visit ACME STORE 1 for deals!");
        assert_eq!(promo.len(), 1);
        assert!(!gs.gold().contains(&promo[0]));
    }

    #[test]
    fn separability_flag() {
        let s = ListingScript {
            container: Container::Table,
            container_class: "x".into(),
            name_style: NameStyle::Bare,
            layout: FieldLayout::BrSeparated,
            nav_items: vec![],
            heading: "h".into(),
            promos: vec![],
            footer: "f".into(),
            outer_wrap: None,
            name_cell_wrap: None,
            fields_reversed: false,
        };
        assert!(!s.xpath_separable());
        let mut s2 = s.clone();
        s2.layout = FieldLayout::OwnCells;
        assert!(s2.xpath_separable());
        let mut s3 = s;
        s3.name_style = NameStyle::WrapTag("u");
        assert!(s3.xpath_separable());
    }
}
