//! Template evolution: deterministic, scripted site churn over epochs.
//!
//! Dalvi et al.'s motivation is wrappers that keep extracting after the
//! source site drifts. Real drift cannot be re-crawled any more than the
//! paper's corpora can, so this module extends the §2.1 generative model
//! with a *churn* dimension: a site starts from one rendering script
//! (epoch 0) and mutates it over discrete epochs. Each [`Mutation`] is
//! tagged with whether a correct wrapper — one anchored on the gold
//! nodes' real separating structure, like the XPATH rules the inductor
//! learns — *should* survive it:
//!
//! * **benign** churn rewrites chrome (headings, nav order, footer,
//!   promo blocks) or wraps the whole page body in an extra `<div>`;
//!   the gold nodes' ancestor tag chain below the listing container is
//!   untouched, so a descendant-anchored rule keeps extracting;
//! * **breaking** churn renames the container class, drifts the record
//!   markup (the name's wrap tag changes), inserts a wrapper `<div>`
//!   into the name's ancestor chain, or reorders fields — the learned
//!   separating features no longer hold and extraction goes empty.
//!
//! Everything is seeded: the same [`TemplateEvolution`] produces
//! byte-identical epoch page streams, which is what lets the eval
//! harness, the self-healing end-to-end tests and the CI churn-smoke
//! script assert exact degradation/recovery behavior.

use crate::data;
use crate::render::{ListingRecord, ListingScript, NameStyle};
use crate::template::{GeneratedSite, PageBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One scripted change to a site's rendering script.
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// Benign: the page heading is reworded.
    HeadingChurn(String),
    /// Benign: the footer sentence is reworded.
    FooterChurn(String),
    /// Benign: the navigation labels rotate by one position.
    NavRotate,
    /// Benign: another promo sentence is appended inside the existing
    /// promo block (the base evolution script always starts with one
    /// promo, so this never materializes a new sibling element ahead of
    /// the listing container).
    PromoInjection(String),
    /// Benign: the whole page body gains a wrapper `<div class=…>`.
    /// Learned xpaths anchor their outermost step on the descendant
    /// axis, so an ancestor *above* every required feature is invisible.
    OuterWrap(String),
    /// Breaking: the listing container's class value churns
    /// (`class='stores'` → `class='stores-v2'`).
    ContainerClassRename(String),
    /// Breaking: record-markup drift — the name's markup changes
    /// (e.g. `<b>` → `<em>`), moving the gold node under a new parent.
    RecordMarkupDrift(NameStyle),
    /// Breaking: a wrapper `<div class=…>` is inserted *inside* the name
    /// cell, between the cell and the name markup.
    NameCellWrap(String),
    /// Breaking: the street field renders before the name.
    FieldReorder,
}

impl Mutation {
    /// `false` when a correct wrapper learned before this mutation is
    /// expected to keep extracting after it (benign chrome churn);
    /// `true` when the mutation changes the gold nodes' separating
    /// structure and a frozen wrapper should go empty or wrong.
    pub fn breaks_wrapper(&self) -> bool {
        match self {
            Mutation::HeadingChurn(_)
            | Mutation::FooterChurn(_)
            | Mutation::NavRotate
            | Mutation::PromoInjection(_)
            | Mutation::OuterWrap(_) => false,
            Mutation::ContainerClassRename(_)
            | Mutation::RecordMarkupDrift(_)
            | Mutation::NameCellWrap(_)
            | Mutation::FieldReorder => true,
        }
    }

    /// Applies the mutation to a rendering script in place.
    pub fn apply(&self, script: &mut ListingScript) {
        match self {
            Mutation::HeadingChurn(heading) => script.heading = heading.clone(),
            Mutation::FooterChurn(footer) => script.footer = footer.clone(),
            Mutation::NavRotate => {
                if !script.nav_items.is_empty() {
                    script.nav_items.rotate_left(1);
                }
            }
            Mutation::PromoInjection(promo) => script.promos.push(promo.clone()),
            Mutation::OuterWrap(class) => script.outer_wrap = Some(class.clone()),
            Mutation::ContainerClassRename(class) => script.container_class = class.clone(),
            Mutation::RecordMarkupDrift(style) => script.name_style = style.clone(),
            Mutation::NameCellWrap(class) => script.name_cell_wrap = Some(class.clone()),
            Mutation::FieldReorder => script.fields_reversed = !script.fields_reversed,
        }
    }

    /// A short human-readable description (manifests, journals).
    pub fn describe(&self) -> String {
        match self {
            Mutation::HeadingChurn(h) => format!("heading churn → {h:?}"),
            Mutation::FooterChurn(_) => "footer churn".into(),
            Mutation::NavRotate => "nav rotation".into(),
            Mutation::PromoInjection(_) => "promo injection".into(),
            Mutation::OuterWrap(c) => format!("outer wrapper div .{c}"),
            Mutation::ContainerClassRename(c) => format!("container class rename → .{c}"),
            Mutation::RecordMarkupDrift(s) => format!("record markup drift → {s:?}"),
            Mutation::NameCellWrap(c) => format!("name-cell wrapper div .{c}"),
            Mutation::FieldReorder => "field reorder".into(),
        }
    }
}

/// Configuration of a scripted site evolution.
#[derive(Clone, Debug)]
pub struct TemplateEvolution {
    /// RNG seed: same seed, byte-identical epoch streams.
    pub seed: u64,
    /// Total epochs, including the unmutated epoch 0.
    pub epochs: usize,
    /// Pages generated per epoch.
    pub pages_per_epoch: usize,
    /// Records per page (fixed, so pages of one epoch share a template).
    pub records_per_page: usize,
    /// Fraction of record names drawn from the dictionary pool (the
    /// annotator recall available to a relearn pass).
    pub dict_fraction: f64,
    /// Explicit per-epoch mutation schedule (`schedule[e-1]` is applied
    /// entering epoch `e`). Empty → the seeded default schedule, which
    /// alternates benign and breaking epochs.
    pub schedule: Vec<Vec<Mutation>>,
}

impl Default for TemplateEvolution {
    fn default() -> Self {
        TemplateEvolution {
            seed: 0xC0DE,
            epochs: 4,
            pages_per_epoch: 4,
            records_per_page: 4,
            dict_fraction: 0.6,
            schedule: Vec::new(),
        }
    }
}

/// One epoch of the evolved site.
#[derive(Debug)]
pub struct EvolutionEpoch {
    /// Epoch number (0 = the unmutated base).
    pub index: usize,
    /// Mutations applied entering this epoch (empty for epoch 0).
    pub mutations: Vec<Mutation>,
    /// True when every mutation entering this epoch is benign — a
    /// correct wrapper serving at epoch `index - 1` should survive.
    pub survivable: bool,
    /// The epoch's rendering script (post-mutation).
    pub script: ListingScript,
    /// The epoch's generated pages with gold labels.
    pub site: GeneratedSite,
}

/// The full evolution: epochs plus the annotator dictionary.
#[derive(Debug)]
pub struct EvolutionDataset {
    /// Epoch streams, index 0 first.
    pub epochs: Vec<EvolutionEpoch>,
    /// Names known to a dictionary annotator (covers `dict_fraction` of
    /// each epoch's records in expectation).
    pub dictionary: Vec<String>,
}

impl EvolutionDataset {
    /// Whether a correct wrapper learned at epoch `from` should still
    /// extract at epoch `to` (no breaking epoch in between).
    pub fn wrapper_survives(&self, from: usize, to: usize) -> bool {
        self.epochs[from + 1..=to].iter().all(|e| e.survivable)
    }
}

impl TemplateEvolution {
    /// A small evolution for tests: benign epoch 1, breaking epoch 2.
    pub fn small(seed: u64) -> TemplateEvolution {
        TemplateEvolution {
            seed,
            epochs: 3,
            ..TemplateEvolution::default()
        }
    }

    /// Generates every epoch's page stream deterministically.
    pub fn run(&self) -> EvolutionDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pool = name_pool(&mut rng);
        let dict_len = ((pool.len() as f64) * self.dict_fraction).round() as usize;
        let dictionary: Vec<String> = pool[..dict_len.clamp(1, pool.len())].to_vec();

        // The base script: always a separable one, so "a correct wrapper
        // exists at epoch 0" holds by construction. It starts with one
        // promo so the promo block exists from epoch 0 — PromoInjection
        // then only appends text inside it. (A first promo on a
        // promo-less script would materialize a new sibling element
        // before the listing container, shifting child positions the
        // learned rule may key on — breaking, not benign.)
        let base_promo = data::PROMO_TEMPLATES
            .choose(&mut rng)
            .expect("nonempty")
            .replacen("{}", "selected stores", 1);
        let mut script = loop {
            let candidate =
                ListingScript::random(&mut rng, "Dealer Locator", vec![base_promo.clone()]);
            if candidate.xpath_separable() && candidate.lr_separable() {
                break candidate;
            }
        };
        let schedule = if self.schedule.is_empty() {
            default_schedule(&mut rng, self.epochs.saturating_sub(1), &script)
        } else {
            self.schedule.clone()
        };

        let mut epochs = Vec::with_capacity(self.epochs);
        for index in 0..self.epochs {
            let mutations: Vec<Mutation> = if index == 0 {
                Vec::new()
            } else {
                schedule.get(index - 1).cloned().unwrap_or_default()
            };
            for m in &mutations {
                m.apply(&mut script);
            }
            let survivable = mutations.iter().all(|m| !m.breaks_wrapper());
            let site = render_epoch(&script, index, self, &pool, &mut rng);
            epochs.push(EvolutionEpoch {
                index,
                mutations,
                survivable,
                script: script.clone(),
                site,
            });
        }
        EvolutionDataset { epochs, dictionary }
    }
}

/// The seeded default schedule: benign, breaking, benign, breaking, …
/// with concrete mutations drawn from the rng.
fn default_schedule(rng: &mut StdRng, epochs: usize, base: &ListingScript) -> Vec<Vec<Mutation>> {
    // Track the style across breaking epochs so each drift really moves
    // the name under a new parent tag (a repeat would be a no-op).
    let mut style = base.name_style.clone();
    (0..epochs)
        .map(|i| {
            if i % 2 == 0 {
                vec![
                    Mutation::HeadingChurn(format!(
                        "{} v{}",
                        ["Store Finder", "Dealer Directory", "Where To Buy"]
                            .choose(rng)
                            .expect("nonempty"),
                        i + 2
                    )),
                    Mutation::NavRotate,
                    Mutation::PromoInjection(
                        data::PROMO_TEMPLATES
                            .choose(rng)
                            .expect("nonempty")
                            .replacen("{}", "our partners", 1),
                    ),
                    Mutation::OuterWrap(format!("layout-v{}", i + 2)),
                ]
            } else {
                // Record-markup drift to a wrap tag the script does not
                // already use — the gold node's parent tag changes, which
                // every separating rule keys on.
                let tag = *["em", "i", "u", "b", "strong"]
                    .iter()
                    .find(|t| style != NameStyle::WrapTag(t))
                    .expect("five candidates, one style");
                style = NameStyle::WrapTag(tag);
                vec![
                    Mutation::RecordMarkupDrift(NameStyle::WrapTag(tag)),
                    Mutation::ContainerClassRename(format!("{}-v{}", base.container_class, i + 2)),
                ]
            }
        })
        .collect()
}

/// Name pool shared by every epoch (churn rewrites markup, not data).
fn name_pool(rng: &mut StdRng) -> Vec<String> {
    let mut names: Vec<String> = Vec::with_capacity(800);
    'outer: for town in data::TOWN_WORDS {
        for cat in data::CATEGORY_WORDS {
            names.push(format!("{town} {cat}"));
            if names.len() >= 800 {
                break 'outer;
            }
        }
    }
    names.shuffle(rng);
    names
}

fn render_epoch(
    script: &ListingScript,
    index: usize,
    cfg: &TemplateEvolution,
    pool: &[String],
    rng: &mut StdRng,
) -> GeneratedSite {
    let pages = (0..cfg.pages_per_epoch)
        .map(|_| {
            let zip = format!("{:05}", rng.gen_range(10000..99999));
            let mut used: Vec<&String> = Vec::new();
            let records: Vec<ListingRecord> = (0..cfg.records_per_page)
                .map(|_| {
                    let name = loop {
                        let candidate = pool.choose(rng).expect("nonempty");
                        if !used.contains(&candidate) {
                            used.push(candidate);
                            break candidate.clone();
                        }
                    };
                    ListingRecord {
                        name,
                        street: format!(
                            "{} {}",
                            rng.gen_range(1..9999),
                            data::STREET_WORDS.choose(rng).expect("nonempty")
                        ),
                        city_line: {
                            let (city, state) = data::CITY_STATE.choose(rng).expect("nonempty");
                            Some(format!("{city}, {state} {zip}"))
                        },
                        phone: Some(format!(
                            "({}) {}-{}",
                            rng.gen_range(201..989),
                            rng.gen_range(200..999),
                            rng.gen_range(1000..9999)
                        )),
                    }
                })
                .collect();
            let mut b = PageBuilder::new();
            script.render_page(&mut b, &format!("epoch {index} near {zip}"), &records);
            b.finish()
        })
        .collect();
    GeneratedSite::from_pages(index, pages)
}

/// Returns the epoch's pages re-serialized to HTML strings — the form a
/// crawler (or `POST /extract`) would carry them in.
pub fn epoch_html(epoch: &EvolutionEpoch) -> Vec<String> {
    (0..epoch.site.site.page_count() as u32)
        .map(|p| aw_dom::serialize(epoch.site.site.page(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The separating structure a learned rule keys on: the gold node's
    /// upward ancestor tag chain, the container class, and the field
    /// order. Benign churn must leave the epoch-0 chain as a prefix of
    /// the evolved chain (descendant-anchored rules are insensitive to
    /// *added* outer ancestors); breaking churn must change it — the
    /// wrapper-level counterpart is exercised end to end in
    /// `tests/relearn_loop.rs`, where real wrappers are learned.
    fn gold_chain(epoch: &EvolutionEpoch) -> Vec<String> {
        let gs = &epoch.site;
        let &n = gs.gold().iter().next().expect("gold nonempty");
        let (doc, id) = gs.site.resolve(n);
        doc.ancestors(id)
            .filter_map(|a| doc.tag(a).map(str::to_string))
            .collect()
    }

    fn signature(epoch: &EvolutionEpoch) -> (Vec<String>, String, bool) {
        (
            gold_chain(epoch),
            epoch.script.container_class.clone(),
            epoch.script.fields_reversed,
        )
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TemplateEvolution::small(7).run();
        let b = TemplateEvolution::small(7).run();
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(epoch_html(x), epoch_html(y));
            assert_eq!(x.mutations, y.mutations);
        }
        let c = TemplateEvolution::small(8).run();
        assert_ne!(epoch_html(&a.epochs[0]), epoch_html(&c.epochs[0]));
    }

    #[test]
    fn default_schedule_alternates_benign_and_breaking() {
        let ds = TemplateEvolution {
            epochs: 5,
            ..TemplateEvolution::default()
        }
        .run();
        assert_eq!(ds.epochs.len(), 5);
        assert!(ds.epochs[0].survivable, "epoch 0 is the unmutated base");
        assert!(ds.epochs[0].mutations.is_empty());
        assert!(ds.epochs[1].survivable);
        assert!(!ds.epochs[2].survivable);
        assert!(ds.epochs[3].survivable);
        assert!(!ds.epochs[4].survivable);
        assert!(ds.wrapper_survives(0, 1));
        assert!(!ds.wrapper_survives(0, 2));
        assert!(ds.wrapper_survives(2, 3), "relearning at 2 survives into 3");
    }

    #[test]
    fn every_epoch_has_resolvable_gold() {
        for seed in [1, 2, 3] {
            let cfg = TemplateEvolution {
                seed,
                epochs: 5,
                ..TemplateEvolution::default()
            };
            let ds = cfg.run();
            for e in &ds.epochs {
                assert_eq!(
                    e.site.gold().len(),
                    cfg.pages_per_epoch * cfg.records_per_page,
                    "seed {seed} epoch {} ({:?})",
                    e.index,
                    e.mutations
                );
            }
        }
    }

    #[test]
    fn benign_epochs_preserve_the_separating_structure() {
        for seed in [11, 12, 13] {
            let ds = TemplateEvolution {
                seed,
                epochs: 3,
                ..TemplateEvolution::default()
            }
            .run();
            let base = signature(&ds.epochs[0]);
            let benign = signature(&ds.epochs[1]);
            // Benign churn may only *extend* the ancestor chain upward
            // (outer wraps); the part a rule anchors on is untouched.
            assert!(
                benign.0.starts_with(&base.0),
                "seed {seed}: {base:?} vs {benign:?} ({:?})",
                ds.epochs[1].mutations
            );
            assert_eq!(benign.1, base.1, "seed {seed}: container class churned");
            assert_eq!(benign.2, base.2, "seed {seed}: fields reordered");
        }
    }

    #[test]
    fn breaking_epochs_change_the_separating_structure() {
        for seed in [11, 12, 13] {
            let ds = TemplateEvolution {
                seed,
                epochs: 3,
                ..TemplateEvolution::default()
            }
            .run();
            let before = signature(&ds.epochs[1]);
            let after = signature(&ds.epochs[2]);
            assert_ne!(
                before, after,
                "seed {seed}: breaking epoch left structure intact ({:?})",
                ds.epochs[2].mutations
            );
            // The default breaking epoch drifts the name's parent tag.
            assert_ne!(
                before.0.first(),
                after.0.first(),
                "seed {seed}: gold parent tag must drift"
            );
        }
    }

    #[test]
    fn explicit_schedules_are_honored() {
        let ds = TemplateEvolution {
            epochs: 2,
            schedule: vec![vec![Mutation::FieldReorder]],
            ..TemplateEvolution::default()
        }
        .run();
        assert_eq!(ds.epochs[1].mutations, vec![Mutation::FieldReorder]);
        assert!(!ds.epochs[1].survivable);
        assert!(ds.epochs[1].script.fields_reversed);
    }

    #[test]
    fn dictionary_covers_a_fraction_of_records() {
        let ds = TemplateEvolution::small(31).run();
        let gs = &ds.epochs[0].site;
        let dict: std::collections::HashSet<&str> =
            ds.dictionary.iter().map(String::as_str).collect();
        let covered = gs
            .gold()
            .iter()
            .filter(|&&n| dict.contains(gs.site.text_of(n).unwrap_or("")))
            .count();
        assert!(covered >= 1, "dictionary must hit some names");
    }
}
