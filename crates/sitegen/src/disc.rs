//! The DISC dataset (§7): discography sites with album/track pages.
//!
//! 15 sites, each carrying structurally-identical album pages. The
//! annotator's seed database holds the track lists of a few *popular*
//! albums (the paper used 11); any site is expected to carry some of them.
//! Noise mirrors the paper's: title tracks make the album-title node match
//! a track name exactly, review blocks quote track names verbatim, and a
//! ~10% rendering mutation keeps recall near 0.9.

use crate::data;
use crate::template::{GeneratedSite, PageBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Gold type index for track names.
pub const TYPE_TRACK: usize = 0;
/// Gold type index for album-title nodes (single-entity target, App. B.2).
pub const TYPE_TITLE: usize = 1;

/// One album of the global pool.
#[derive(Clone, Debug)]
pub struct Album {
    /// Album title.
    pub title: String,
    /// Artist credit.
    pub artist: String,
    /// Track titles in order.
    pub tracks: Vec<String>,
}

/// Configuration for [`generate_disc`].
#[derive(Clone, Debug)]
pub struct DiscConfig {
    /// Number of websites (paper: 15).
    pub sites: usize,
    /// Albums in the global pool.
    pub pool_albums: usize,
    /// Popular albums whose tracks seed the annotator (paper: 11).
    pub popular_albums: usize,
    /// Min/max albums (pages) per site.
    pub albums_per_site: (usize, usize),
    /// Probability that an album's first track repeats the album title.
    pub title_track_prob: f64,
    /// Probability a track's display text is mutated (recall killer).
    pub mutation_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DiscConfig {
    fn default() -> Self {
        DiscConfig {
            sites: 15,
            pool_albums: 30,
            popular_albums: 11,
            albums_per_site: (6, 12),
            title_track_prob: 0.4,
            mutation_prob: 0.1,
            seed: 0xD15C,
        }
    }
}

impl DiscConfig {
    /// A small configuration for fast tests.
    pub fn small(sites: usize, seed: u64) -> Self {
        DiscConfig {
            sites,
            albums_per_site: (3, 5),
            seed,
            ..Default::default()
        }
    }
}

/// The generated dataset.
#[derive(Debug)]
pub struct DiscDataset {
    /// The generated websites.
    pub sites: Vec<GeneratedSite>,
    /// The album pool (popular albums first).
    pub albums: Vec<Album>,
    /// The annotator's track dictionary (tracks of the popular albums).
    pub track_dictionary: Vec<String>,
    /// The popular album titles (B.2's album-title seed database).
    pub title_dictionary: Vec<String>,
}

/// Generates the dataset.
pub fn generate_disc(cfg: &DiscConfig) -> DiscDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let albums = album_pool(cfg, &mut rng);
    let track_dictionary: Vec<String> = albums[..cfg.popular_albums]
        .iter()
        .flat_map(|a| a.tracks.iter().cloned())
        .collect();
    let title_dictionary: Vec<String> = albums[..cfg.popular_albums]
        .iter()
        .map(|a| a.title.clone())
        .collect();

    let sites = (0..cfg.sites)
        .map(|id| {
            let mut srng = StdRng::seed_from_u64(cfg.seed ^ (0xA1B2 + id as u64 * 0x9E37));
            generate_site(id, cfg, &mut srng, &albums)
        })
        .collect();
    DiscDataset {
        sites,
        albums,
        track_dictionary,
        title_dictionary,
    }
}

fn album_pool(cfg: &DiscConfig, rng: &mut StdRng) -> Vec<Album> {
    let mut titles_used = std::collections::HashSet::new();
    // Track names are globally unique across the pool: a collision would
    // let the dictionary accidentally "know" tracks of unpopular albums,
    // which distorts the annotator's operating point.
    let mut tracks_used = std::collections::HashSet::new();
    (0..cfg.pool_albums)
        .map(|_| {
            let title = loop {
                let t = format!(
                    "{} {}",
                    data::TRACK_ADJ.choose(rng).expect("nonempty"),
                    data::TRACK_NOUN.choose(rng).expect("nonempty")
                );
                if titles_used.insert(t.clone()) {
                    break t;
                }
            };
            let artist = data::ARTIST_NAMES
                .choose(rng)
                .expect("nonempty")
                .to_string();
            let n_tracks = rng.gen_range(6..=12);
            let mut tracks: Vec<String> = Vec::with_capacity(n_tracks);
            if rng.gen_bool(cfg.title_track_prob) {
                tracks.push(title.clone()); // title track
                tracks_used.insert(title.clone());
            }
            while tracks.len() < n_tracks {
                let t = format!(
                    "{} {}{}",
                    data::TRACK_ADJ.choose(rng).expect("nonempty"),
                    data::TRACK_NOUN.choose(rng).expect("nonempty"),
                    data::TRACK_TAIL.choose(rng).expect("nonempty"),
                );
                if t != title && tracks_used.insert(t.clone()) {
                    tracks.push(t);
                }
            }
            Album {
                title,
                artist,
                tracks,
            }
        })
        .collect()
}

/// Per-site rendering choices for album pages.
#[derive(Clone, Debug)]
struct DiscScript {
    /// Tag wrapping the canonical album-title node.
    title_tag: &'static str,
    /// Track list container: ("ol", "li") / ("table", "td") / ("div", "div").
    list_tags: (&'static str, &'static str),
    /// Whether tracks are wrapped in <a>.
    track_link: bool,
    /// Whether a breadcrumb repeats the album title (consistent location).
    breadcrumb: bool,
    /// Reviews per page (0..=3).
    reviews: usize,
}

impl DiscScript {
    fn random(rng: &mut StdRng) -> Self {
        DiscScript {
            title_tag: ["h1", "h2", "div", "b"].choose(rng).expect("nonempty"),
            list_tags: *[("ol", "li"), ("ul", "li"), ("table", "td"), ("div", "div")]
                .choose(rng)
                .expect("nonempty"),
            track_link: rng.gen_bool(0.5),
            breadcrumb: rng.gen_bool(0.5),
            reviews: rng.gen_range(0..=3),
        }
    }
}

fn generate_site(id: usize, cfg: &DiscConfig, rng: &mut StdRng, pool: &[Album]) -> GeneratedSite {
    let script = DiscScript::random(rng);
    let n_albums = rng.gen_range(cfg.albums_per_site.0..=cfg.albums_per_site.1);
    // Bias toward popular albums so every site carries some (§7: "we expect
    // any discography website to have at least a few of these albums").
    let mut chosen: Vec<&Album> = Vec::new();
    let n_popular = (n_albums / 2).max(2).min(cfg.popular_albums);
    let mut popular: Vec<&Album> = pool[..cfg.popular_albums].iter().collect();
    popular.shuffle(rng);
    chosen.extend(popular.into_iter().take(n_popular));
    let mut rest: Vec<&Album> = pool[cfg.popular_albums..].iter().collect();
    rest.shuffle(rng);
    chosen.extend(rest.into_iter().take(n_albums.saturating_sub(chosen.len())));
    chosen.shuffle(rng);

    let pages = chosen
        .iter()
        .map(|album| render_album_page(rng, cfg, &script, album))
        .collect();
    GeneratedSite::from_pages(id, pages)
}

fn render_album_page(
    rng: &mut StdRng,
    cfg: &DiscConfig,
    script: &DiscScript,
    album: &Album,
) -> (String, crate::template::PageMarks) {
    let mut b = PageBuilder::new();
    // Chrome.
    b.raw("<div class='nav'>");
    for item in ["Home", "Artists", "Albums", "Charts"] {
        b.raw("<a href='#'>");
        b.text(item);
        b.raw("</a>");
    }
    b.raw("</div>");

    // Breadcrumb (a consistent second title location, App. B.2).
    if script.breadcrumb {
        b.raw("<div class='crumb'><a href='#'>");
        b.text(&album.artist);
        b.raw("</a><span>");
        b.gold_text(&album.title, TYPE_TITLE);
        b.raw("</span></div>");
    }

    // Canonical title + artist.
    b.raw(&format!("<{} class='albumtitle'>", script.title_tag));
    b.gold_text(&album.title, TYPE_TITLE);
    b.raw(&format!("</{}><div class='artist'>", script.title_tag));
    b.text(&album.artist);
    b.raw("</div>");

    // Track list.
    let (list, item) = script.list_tags;
    b.raw(&format!("<{list} class='tracks'>"));
    for (i, track) in album.tracks.iter().enumerate() {
        if list == "table" {
            b.raw("<tr><td>");
            b.text(&format!("{}.", i + 1));
            b.raw("</td><td>");
        } else {
            b.raw(&format!("<{item}>"));
        }
        // Display mutation: exact-match annotator misses these (recall<1),
        // but they are still gold tracks.
        let display = if rng.gen_bool(cfg.mutation_prob) {
            format!("{track} [Remastered]")
        } else {
            track.clone()
        };
        if script.track_link {
            b.raw("<a href='#'>");
            b.gold_text(&display, TYPE_TRACK);
            b.raw("</a>");
        } else {
            b.gold_text(&display, TYPE_TRACK);
        }
        if list == "table" {
            b.raw("</td></tr>");
        } else {
            b.raw(&format!("</{item}>"));
        }
    }
    b.raw(&format!("</{list}>"));

    // Reviews quoting tracks verbatim — exact-match false positives.
    for _ in 0..script.reviews {
        let template = data::REVIEW_TEMPLATES.choose(rng).expect("nonempty");
        let quoted = album.tracks.choose(rng).expect("albums have tracks");
        let (before, after) = template.split_once("{}").expect("placeholder");
        b.raw("<div class='review'>");
        if !before.trim().is_empty() {
            b.text(before);
        }
        b.raw("<i>");
        b.text(quoted); // quoted track name as its own text node
        b.raw("</i>");
        if !after.trim().is_empty() {
            b.text(after);
        }
        b.raw("</div>");
    }

    b.raw("<div class='footer'>");
    b.text("All music remains property of the artists.");
    b.raw("</div>");
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_annotate::{DictionaryAnnotator, MatchMode};

    #[test]
    fn generates_dataset_shape() {
        let ds = generate_disc(&DiscConfig::small(4, 3));
        assert_eq!(ds.sites.len(), 4);
        assert_eq!(ds.albums.len(), 30);
        assert_eq!(ds.title_dictionary.len(), 11);
        assert!(!ds.track_dictionary.is_empty());
        for s in &ds.sites {
            assert!(s.site.page_count() >= 3);
            assert!(!s.gold_types[TYPE_TRACK].is_empty());
            assert!(!s.gold_types[TYPE_TITLE].is_empty());
        }
    }

    #[test]
    fn annotator_recall_near_point_nine() {
        // Recall w.r.t. pages with ≥1 annotation (the paper's definition):
        // popular-album pages are fully in-dictionary except mutations.
        let ds = generate_disc(&DiscConfig::default());
        let annotator = DictionaryAnnotator::new(ds.track_dictionary.iter(), MatchMode::Exact);
        let (mut tp, mut gold_on_annotated_pages, mut fp) = (0usize, 0usize, 0usize);
        for s in &ds.sites {
            let labels = annotator.annotate(&s.site);
            let gold = &s.gold_types[TYPE_TRACK];
            let annotated_pages: std::collections::HashSet<u32> =
                labels.iter().map(|n| n.page).collect();
            gold_on_annotated_pages += gold
                .iter()
                .filter(|n| annotated_pages.contains(&n.page))
                .count();
            for l in &labels {
                if gold.contains(l) {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        let recall = tp as f64 / gold_on_annotated_pages as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        assert!((0.8..=0.99).contains(&recall), "recall {recall}");
        assert!((0.65..=0.95).contains(&precision), "precision {precision}");
    }

    #[test]
    fn title_tracks_create_exact_fp_nodes() {
        // Somewhere in the dataset an album-title node must equal a track
        // name (the title-track noise source).
        let ds = generate_disc(&DiscConfig::default());
        let mut found = false;
        for s in &ds.sites {
            for &t in &s.gold_types[TYPE_TITLE] {
                let title = s.site.text_of(t).unwrap();
                if ds.track_dictionary.iter().any(|d| d == title) {
                    found = true;
                }
            }
        }
        assert!(found, "no title-track collision generated");
    }

    #[test]
    fn gold_tracks_structurally_uniform_per_site() {
        let ds = generate_disc(&DiscConfig::small(3, 21));
        for s in &ds.sites {
            let chains: std::collections::HashSet<Vec<String>> = s.gold_types[TYPE_TRACK]
                .iter()
                .map(|&n| {
                    let (doc, id) = s.site.resolve(n);
                    doc.ancestors(id)
                        .filter_map(|a| doc.tag(a).map(str::to_string))
                        .collect()
                })
                .collect();
            assert_eq!(chains.len(), 1, "site {}: {chains:?}", s.id);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_disc(&DiscConfig::small(2, 5));
        let b = generate_disc(&DiscConfig::small(2, 5));
        assert_eq!(a.sites[0].gold(), b.sites[0].gold());
        assert_eq!(a.track_dictionary, b.track_dictionary);
    }
}
