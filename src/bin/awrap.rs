//! `awrap` — command-line interface to the noise-tolerant wrapper
//! framework.
//!
//! ```text
//! awrap demo
//!     Built-in demonstration on a synthetic dealer-locator site.
//!
//! awrap learn --pages DIR --dict FILE [--lang table|lr|hlrt|xpath]
//!             [--match exact|contains] [--p F] [--r F] [--top N]
//!             [--out FILE] [--bundle FILE]
//!     Learn a wrapper from the HTML pages in DIR (*.html, *.htm; one
//!     website, same script) using dictionary FILE (one entry per line)
//!     as the automatic annotator. Prints the ranked rules and the best
//!     wrapper's extraction; with --out, writes the best wrapper as a
//!     portable serialized artifact. With --bundle, every subdirectory
//!     of DIR is one site (key = its name): all sites learn in one
//!     batched `learn_sites` pass and the best wrappers are written as
//!     one v2 wrapper bundle.
//!
//! awrap apply --wrapper FILE --pages DIR [--site KEY]
//!     Load a wrapper artifact of any generation (v1 single wrapper,
//!     v2 bundle, or v3 binary bundle) and extract from every page in
//!     DIR — the serving half of the learn-offline / extract-online
//!     deployment. Multi-site artifacts need --site KEY; from a v3
//!     bundle only that site's segment is read.
//!
//! awrap bundle pack --in FILE --out FILE
//! awrap bundle unpack --in FILE --out FILE
//! awrap bundle inspect --in FILE
//!     Convert between bundle generations: `pack` writes a v1/v2 JSON
//!     artifact as a v3 binary bundle (`aw-bundle-bin`: seekable,
//!     per-site segments behind a sorted offset index), `unpack` is the
//!     exact inverse, and `inspect` prints a v3 bundle's header, site
//!     count and per-segment sizes without loading any wrapper.
//!
//! awrap serve --bundle FILE [--lazy [--max-resident N]]
//!             [--addr HOST:PORT] [--threads N] [--workers M] [--blocking]
//!             [--relearn --dict FILE [--lang L] [--window N] [--max-empty-rate F]]
//!     Load a wrapper artifact of any generation into a hot-swappable
//!     registry and serve extraction over HTTP (POST /extract,
//!     GET/POST /wrappers, GET /healthz, GET /health,
//!     GET /health/{site}). The default engine is the event-driven
//!     reactor (keep-alive, pipelining, backpressure); `--blocking`
//!     selects the legacy connection-per-worker loop instead. With
//!     --lazy, FILE must be a v3 binary bundle: the registry starts
//!     empty and faults wrappers in per site as requests name them,
//!     keeping at most --max-resident resident (LRU eviction).
//!     `--addr 127.0.0.1:0` picks an ephemeral port (printed on
//!     startup). With `--relearn`, a background worker watches
//!     per-site extraction health and shadow-relearns degraded sites
//!     from retained request pages, hot-swapping the winner.
//!
//! awrap evolve --out DIR [--seed N] [--epochs N]
//!     Generate a scripted site evolution (benign and breaking template
//!     churn) as per-epoch page directories — the corpus behind the
//!     churn smoke test and the `churn` experiment.
//!
//! awrap extract --xpath RULE --pages DIR
//!     Apply an xpath rule of the fragment to every page in DIR.
//!
//! awrap experiment NAME [--quick]
//!     Re-run a paper experiment (fig2a…fig3c, table1, b2, churn, or
//!     `all`).
//! ```

use autowrappers::prelude::*;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Reject a broken AW_THREADS up front with a clean message instead of
    // panicking mid-pipeline (or silently falling back, as older builds
    // did).
    if let Err(e) = env_threads() {
        eprintln!("awrap: {e}");
        return ExitCode::FAILURE;
    }
    let result = match args.first().map(String::as_str) {
        Some("demo") => demo(),
        Some("learn") => learn_cmd(&args[1..]),
        Some("apply") => apply_cmd(&args[1..]),
        Some("bundle") => bundle_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("evolve") => evolve_cmd(&args[1..]),
        Some("extract") => extract_cmd(&args[1..]),
        Some("experiment") => experiment_cmd(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}; try --help")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("awrap: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str =
    "usage: awrap <demo|learn|apply|bundle|serve|evolve|extract|experiment> [options]
  demo                                      built-in demonstration
  learn --pages DIR --dict FILE             learn a wrapper from noisy labels
        [--lang table|lr|hlrt|xpath] [--match exact|contains]
        [--p FLOAT] [--r FLOAT] [--top N] [--out FILE] [--threads N]
        [--bundle FILE]  (DIR's subdirectories = sites; write a v2 bundle)
  apply --wrapper FILE --pages DIR          extract with a wrapper artifact of
        [--site KEY] [--threads N]          any generation (v1/v2/v3)
  bundle pack --in FILE --out FILE          v1/v2 JSON artifact -> v3 binary
  bundle unpack --in FILE --out FILE        v3 binary -> v2 JSON bundle
  bundle inspect --in FILE                  v3 header, sites, segment sizes
  serve --bundle FILE                       serve extraction over HTTP
        [--lazy [--max-resident N]]         (--lazy: FILE is a v3 binary
        [--addr HOST:PORT] [--threads N]     bundle, wrappers fault in per
        [--workers M] [--blocking]           site, LRU-evicted at the cap;
                                             --blocking: legacy loop instead
                                             of the keep-alive reactor)
        [--relearn --dict FILE [--lang L] [--window N] [--max-empty-rate F]]
                                            (self-heal degraded sites by
                                            shadow relearning + hot swap)
  evolve --out DIR [--seed N] [--epochs N]  generate scripted site churn
  extract --xpath RULE --pages DIR          apply an xpath rule
  experiment NAME [--quick]                 rerun a paper experiment
      NAME ∈ fig2a fig2b fig2c fig2d fig2e fig2f fig2g fig2h fig2i
             table1 fig3a fig3b fig3c b2 churn all
  --threads N overrides the parallelism of the learn/apply/serve hot loops
  (default: all cores, or the AW_THREADS environment variable)";

/// Parses the optional `--threads` override into a dedicated executor
/// (a positive integer; 0 and non-numeric values are rejected).
fn threads_flag(args: &[String]) -> Result<Option<Executor>, String> {
    flag(args, "--threads")
        .map(|v| {
            parse_threads(&v)
                .map(Executor::new)
                .map_err(|e| format!("--threads: {e}"))
        })
        .transpose()
}

/// Pulls `--flag value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Reads every `*.html` / `*.htm` file in `dir`, sorted by name.
fn read_pages(dir: &str) -> Result<Vec<String>, String> {
    let mut files: Vec<_> = std::fs::read_dir(Path::new(dir))
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| matches!(p.extension().and_then(|x| x.to_str()), Some("html" | "htm")))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no *.html pages found in {dir}"));
    }
    files
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display())))
        .collect()
}

/// A generic publication prior for when no gold training lists exist:
/// listing records typically carry 2–6 text fields and align well.
fn default_publication_model() -> PublicationModel {
    PublicationModel::learn(&[
        ListFeatures {
            schema_size: 2.0,
            alignment: 0.0,
        },
        ListFeatures {
            schema_size: 3.0,
            alignment: 0.0,
        },
        ListFeatures {
            schema_size: 4.0,
            alignment: 0.0,
        },
        ListFeatures {
            schema_size: 5.0,
            alignment: 1.0,
        },
        ListFeatures {
            schema_size: 3.0,
            alignment: 2.0,
        },
    ])
}

fn demo() -> Result<(), String> {
    use aw_sitegen::{generate_dealers, DealersConfig};
    let ds = generate_dealers(&DealersConfig::small(1, 42));
    let gs = &ds.sites[0];
    let annotator = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let labels = annotator.annotate(&gs.site);
    println!(
        "demo site: {} pages, {} text nodes",
        gs.site.page_count(),
        gs.site.text_nodes().len()
    );
    println!(
        "dictionary annotator produced {} noisy labels",
        labels.len()
    );

    let model = RankingModel::new(AnnotatorModel::new(0.9, 0.3), default_publication_model());
    let engine = Engine::builder(model)
        .language(WrapperLanguage::XPath)
        .build();
    let out = engine.learn(&gs.site, &labels).map_err(|e| e.to_string())?;
    let best = out.best().ok_or("no labels, no wrapper")?;
    println!("\nlearned wrapper: {}", best.rule);
    println!("extraction ({} nodes):", best.extraction.len());
    for &n in best.extraction.iter().take(10) {
        println!("  {}", gs.site.text_of(n).unwrap_or("?"));
    }
    let score = aw_eval::prf1(&best.extraction, gs.gold());
    println!(
        "\nvs (hidden) gold labels: P={:.3} R={:.3} F1={:.3}",
        score.precision, score.recall, score.f1
    );
    Ok(())
}

fn learn_cmd(args: &[String]) -> Result<(), String> {
    let dir = flag(args, "--pages").ok_or("--pages DIR is required")?;
    let dict_path = flag(args, "--dict").ok_or("--dict FILE is required")?;
    let language = match flag(args, "--lang") {
        None => WrapperLanguage::XPath,
        Some(name) => name.parse::<WrapperLanguage>().map_err(|e| e.to_string())?,
    };
    let match_mode = match flag(args, "--match").as_deref() {
        None | Some("contains") => MatchMode::Contains,
        Some("exact") => MatchMode::Exact,
        Some(other) => return Err(format!("unknown match mode {other:?}")),
    };
    let p: f64 = flag(args, "--p")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--p: {e}"))?
        .unwrap_or(0.9);
    let r: f64 = flag(args, "--r")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--r: {e}"))?
        .unwrap_or(0.3);
    let top: usize = flag(args, "--top")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--top: {e}"))?
        .unwrap_or(5);

    let dict = std::fs::read_to_string(&dict_path).map_err(|e| format!("{dict_path}: {e}"))?;
    let annotator =
        DictionaryAnnotator::new(dict.lines().filter(|l| !l.trim().is_empty()), match_mode);
    let entries = annotator.len();

    let model = RankingModel::new(AnnotatorModel::new(p, r), default_publication_model());
    let mut builder = Engine::builder(model)
        .language(language)
        .annotator(annotator);
    if let Some(exec) = threads_flag(args)? {
        builder = builder.executor(exec);
    }
    let engine = builder.build();

    if let Some(bundle_path) = flag(args, "--bundle") {
        if has_flag(args, "--out") {
            // The single-site artifact and the multi-site bundle are
            // different outputs of different learn paths; silently
            // ignoring one would strand the user without a file they
            // asked for.
            return Err("--out and --bundle are mutually exclusive; \
                        use --out for one site's artifact, --bundle for a multi-site bundle"
                .into());
        }
        return learn_bundle(&engine, &dir, &bundle_path);
    }

    let pages = read_pages(&dir)?;
    let site = Site::from_html(&pages);
    let labels = engine.annotate(&site).map_err(|e| match e {
        AwError::NoLabels => "the annotator labeled nothing; check the dictionary".to_string(),
        other => other.to_string(),
    })?;
    println!(
        "{} pages, {} dictionary entries, {} noisy labels",
        site.page_count(),
        entries,
        labels.len()
    );

    let ranked = engine.learn(&site, &labels).map_err(|e| e.to_string())?;
    println!(
        "\nwrapper space: {} candidates ({} inductor calls)",
        ranked.wrapper_space_size(),
        ranked.inductor_calls()
    );
    for (i, w) in ranked.iter().take(top).enumerate() {
        println!(
            "  #{:<2} score {:9.3}  n={:<4} {}",
            i + 1,
            w.score.total,
            w.extraction.len(),
            w.rule
        );
    }
    let best = ranked.best().expect("ranked space is nonempty");
    println!("\nbest wrapper extraction:");
    for &n in &best.extraction {
        println!("  page {} | {}", n.page, site.text_of(n).unwrap_or("?"));
    }
    let wrapper = best.compile();
    println!(
        "\nportable rule (apply to future pages): {}",
        wrapper.rule()
    );
    if let Some(path) = flag(args, "--out") {
        let json = wrapper.to_json();
        std::fs::write(&path, &json)
            .map_err(|e| AwError::Io(format!("{path}: {e}")).to_string())?;
        println!(
            "wrote portable wrapper artifact ({} bytes) to {path}",
            json.len()
        );
    }
    Ok(())
}

/// The multi-site learn path behind `learn --bundle`: every
/// subdirectory of `dir` with HTML pages is one site (key = its name;
/// `dir` itself when it has no such subdirectories), all sites learn in
/// one batched `learn_sites` pass, and the best wrappers ship as one v2
/// bundle.
fn learn_bundle(engine: &Engine, dir: &str, bundle_path: &str) -> Result<(), String> {
    let mut subdirs: Vec<(String, std::path::PathBuf)> = std::fs::read_dir(Path::new(dir))
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .filter_map(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| (n.to_string(), p.clone()))
        })
        .collect();
    subdirs.sort();

    // Read each site's pages exactly once; subdirectories without HTML
    // are reported and skipped, not silently dropped.
    let mut keys: Vec<String> = Vec::with_capacity(subdirs.len());
    let mut sites: Vec<Site> = Vec::with_capacity(subdirs.len());
    for (key, path) in &subdirs {
        match read_pages(&path.display().to_string()) {
            Ok(pages) => {
                keys.push(key.clone());
                sites.push(Site::from_html(&pages));
            }
            Err(e) => println!("  skipping {key}: {e}"),
        }
    }
    if sites.is_empty() {
        // No usable per-site subdirectories: DIR itself is the one site.
        let key = Path::new(dir)
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("default")
            .to_string();
        keys.push(key);
        sites.push(Site::from_html(&read_pages(dir)?));
    }

    println!(
        "learning {} site(s) in one batched pass: {}",
        sites.len(),
        keys.join(", ")
    );

    let ranked = engine.learn_sites(&sites).map_err(|e| e.to_string())?;
    let mut bundle = WrapperBundle::new();
    for (key, site_ranked) in keys.iter().zip(&ranked) {
        match site_ranked.best() {
            None => println!("  {key}: no wrapper (the annotator labeled nothing)"),
            Some(best) => {
                let wrapper = best.compile();
                println!(
                    "  {key}: {} rule {} (n={})",
                    wrapper.language(),
                    wrapper.rule(),
                    best.extraction.len()
                );
                bundle.insert(key.clone(), wrapper);
            }
        }
    }
    if bundle.is_empty() {
        return Err("no site produced a wrapper; nothing to bundle".into());
    }
    let json = bundle.to_json();
    std::fs::write(bundle_path, &json)
        .map_err(|e| AwError::Io(format!("{bundle_path}: {e}")).to_string())?;
    println!(
        "wrote wrapper bundle ({} site(s), {} bytes) to {bundle_path}",
        bundle.len(),
        json.len()
    );
    Ok(())
}

/// `awrap serve`: the learn-offline → bundle → serve-online path's last
/// leg. Loads a bundle into a hot-swappable registry and fronts it with
/// the std-only HTTP server.
fn serve_cmd(args: &[String]) -> Result<(), String> {
    use aw_serve::Server;
    use std::sync::Arc;

    let bundle_path = flag(args, "--bundle").ok_or("--bundle FILE is required")?;
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".to_string());
    let lazy = has_flag(args, "--lazy");
    let max_resident: Option<usize> = flag(args, "--max-resident")
        .map(|v| v.parse())
        .transpose()
        .map_err(|e| format!("--max-resident: {e}"))
        .and_then(|cap| match cap {
            Some(0) => Err("--max-resident: must be positive".into()),
            other => Ok(other),
        })?;
    if max_resident.is_some() && !lazy {
        return Err("--max-resident requires --lazy".into());
    }

    let (registry, banner) = if lazy {
        // Lazy serving needs the seekable v3 format: nothing loads at
        // startup, wrappers fault in per site as requests name them.
        let store = BundleStore::open(&bundle_path).map_err(|e| {
            format!("{e}\n--lazy requires a v3 binary bundle; pack one with `awrap bundle pack`")
        })?;
        let banner = match max_resident {
            Some(cap) => format!(
                "opened v3 bundle lazily: {} site(s) indexed, 0 resident (cap {cap})",
                store.len()
            ),
            None => format!(
                "opened v3 bundle lazily: {} site(s) indexed, 0 resident (no cap)",
                store.len()
            ),
        };
        let registry = WrapperRegistry::from_store(Arc::new(store), max_resident);
        (Arc::new(registry), banner)
    } else {
        // Eager: any artifact generation, fully resident.
        let bundle = ArtifactReader::open(&bundle_path)
            .and_then(LoadedArtifact::into_bundle)
            .map_err(|e| e.to_string())?;
        let keys: Vec<String> = bundle.site_keys().map(str::to_string).collect();
        let banner = format!("loaded {} wrapper(s): {}", keys.len(), keys.join(", "));
        (Arc::new(WrapperRegistry::from_bundle(bundle)), banner)
    };
    let mut service = ExtractionService::new(registry);
    if let Some(exec) = threads_flag(args)? {
        service = service.with_executor(exec);
    }

    // Health thresholds (used with or without --relearn: the /health
    // endpoints always report).
    let mut thresholds = HealthThresholds::default();
    if let Some(window) = flag(args, "--window") {
        thresholds.window = window
            .parse()
            .map_err(|e| format!("--window: {e}"))
            .and_then(|w: usize| {
                if w == 0 {
                    Err("--window: must be positive".into())
                } else {
                    Ok(w)
                }
            })?;
        thresholds.min_window = thresholds.min_window.min(thresholds.window);
    }
    if let Some(rate) = flag(args, "--max-empty-rate") {
        thresholds.max_empty_rate = rate.parse().map_err(|e| format!("--max-empty-rate: {e}"))?;
    }
    service = service.with_thresholds(thresholds);

    // --relearn: a shadow engine (same dictionary-annotator setup as
    // `learn`) plus a background worker that repairs degraded sites.
    let controller = if has_flag(args, "--relearn") {
        let dict_path = flag(args, "--dict").ok_or("--relearn requires --dict FILE")?;
        let language = match flag(args, "--lang") {
            None => WrapperLanguage::XPath,
            Some(name) => name.parse::<WrapperLanguage>().map_err(|e| e.to_string())?,
        };
        let dict = std::fs::read_to_string(&dict_path).map_err(|e| format!("{dict_path}: {e}"))?;
        let annotator = DictionaryAnnotator::new(
            dict.lines().filter(|l| !l.trim().is_empty()),
            MatchMode::Contains,
        );
        let model = RankingModel::new(AnnotatorModel::new(0.9, 0.3), default_publication_model());
        let engine = Engine::builder(model)
            .language(language)
            .annotator(annotator)
            .build();
        let controller = Arc::new(RelearnController::new(&service, engine));
        service = service.with_relearn(Arc::clone(&controller));
        Some(controller)
    } else {
        None
    };

    let threads = service.executor().threads();
    let workers: usize = flag(args, "--workers")
        .map(|v| v.parse())
        .transpose()
        .map_err(|e| format!("--workers: {e}"))?
        .unwrap_or(threads)
        .max(1);
    // --blocking: the legacy connection-per-worker loop instead of the
    // event-driven reactor — the differential oracle, and an escape
    // hatch should a platform's poll(2) misbehave. (Non-unix builds
    // always serve blocking.)
    let blocking = has_flag(args, "--blocking") || cfg!(not(unix));

    let server = Server::bind(Arc::new(service), &addr)
        .map_err(|e| format!("bind {addr}: {e}"))?
        .workers(workers)
        .blocking(blocking);
    let local = server.local_addr().map_err(|e| e.to_string())?;
    let mode = if blocking {
        "blocking loop"
    } else {
        "event-driven reactor, keep-alive"
    };
    println!("{banner}");
    println!(
        "serving on http://{local} ({mode}; {workers} http worker(s), {threads} executor thread(s))"
    );
    println!(
        "endpoints: POST /extract, GET /wrappers, POST /wrappers (hot swap), \
         GET /healthz, GET /health, GET /health/{{site}}"
    );
    let _relearn_worker = controller.as_ref().map(|c| {
        println!("relearn worker: on (shadow relearn + hot swap for degraded sites)");
        c.spawn_worker()
    });
    server.start().map_err(|e| e.to_string())?.join();
    if let Some(c) = &controller {
        c.stop();
    }
    Ok(())
}

/// `awrap evolve`: materialize a scripted [`aw_sitegen::TemplateEvolution`]
/// as per-epoch page directories — each `epoch-N/churn/` is one site's
/// crawl of that epoch (so `epoch-0` feeds `learn --bundle` directly),
/// with the dictionary and a churn manifest alongside.
fn evolve_cmd(args: &[String]) -> Result<(), String> {
    use aw_sitegen::{epoch_html, TemplateEvolution};

    let out = flag(args, "--out").ok_or("--out DIR is required")?;
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--seed: {e}"))?
        .unwrap_or(7);
    let epochs: usize = flag(args, "--epochs")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--epochs: {e}"))?
        .unwrap_or(3);
    if epochs == 0 {
        return Err("--epochs: must be positive".into());
    }
    let dataset = TemplateEvolution {
        epochs,
        ..TemplateEvolution::small(seed)
    }
    .run();

    let root = Path::new(&out);
    let io = |e: std::io::Error, what: &str| format!("{what}: {e}");
    let mut manifest = String::new();
    for epoch in &dataset.epochs {
        let dir = root.join(format!("epoch-{}", epoch.index)).join("churn");
        std::fs::create_dir_all(&dir).map_err(|e| io(e, &dir.display().to_string()))?;
        let pages = epoch_html(epoch);
        for (j, html) in pages.iter().enumerate() {
            let path = dir.join(format!("p{j}.html"));
            std::fs::write(&path, html).map_err(|e| io(e, &path.display().to_string()))?;
        }
        let churn = if epoch.index == 0 {
            "base template".to_string()
        } else {
            let kind = if epoch.survivable {
                "benign"
            } else {
                "breaking"
            };
            let what: Vec<String> = epoch.mutations.iter().map(|m| m.describe()).collect();
            format!("{kind}: {}", what.join("; "))
        };
        manifest.push_str(&format!("epoch-{}: {churn}\n", epoch.index));
        println!("epoch-{}: {} page(s) — {churn}", epoch.index, pages.len());
    }
    std::fs::write(root.join("dict.txt"), dataset.dictionary.join("\n"))
        .map_err(|e| io(e, "dict.txt"))?;
    std::fs::write(root.join("manifest.txt"), &manifest).map_err(|e| io(e, "manifest.txt"))?;
    println!(
        "wrote {} epoch(s), {}-entry dictionary and manifest to {out}",
        dataset.epochs.len(),
        dataset.dictionary.len()
    );
    Ok(())
}

fn apply_cmd(args: &[String]) -> Result<(), String> {
    let wrapper_path = flag(args, "--wrapper").ok_or("--wrapper FILE is required")?;
    let dir = flag(args, "--pages").ok_or("--pages DIR is required")?;
    // Any artifact generation: v1 single wrapper, v2 bundle, or v3
    // binary bundle (opened lazily — with --site only that segment is
    // ever read).
    let artifact = ArtifactReader::open(&wrapper_path).map_err(|e| e.to_string())?;
    let keys = artifact.site_keys();
    let key = match flag(args, "--site") {
        Some(key) => key,
        None if keys.len() == 1 => keys[0].clone(),
        None => {
            return Err(format!(
                "the artifact holds {} wrappers; pick one with --site KEY (keys: {})",
                keys.len(),
                keys.join(", ")
            ))
        }
    };
    let missing = || {
        format!(
            "no wrapper for site {key:?} in the artifact (keys: {})",
            keys.join(", ")
        )
    };
    let mut wrapper = match artifact {
        LoadedArtifact::Resident(mut bundle) => bundle.remove(&key).ok_or_else(missing)?,
        LoadedArtifact::Lazy(store) => store
            .load(&key)
            .map_err(|e| e.to_string())?
            .ok_or_else(missing)?,
    };
    if let Some(exec) = threads_flag(args)? {
        wrapper = wrapper.with_executor(exec);
    }
    println!("loaded {} wrapper: {}", wrapper.language(), wrapper.rule());
    let docs: Vec<Document> = read_pages(&dir)?.iter().map(|html| parse(html)).collect();
    // One batched page-parallel pass — the serving hot loop.
    let mut total = 0usize;
    for (i, ids) in wrapper.extract_pages(&docs).into_iter().enumerate() {
        for id in ids {
            if let Some(t) = docs[i].text(id) {
                println!("page {i} | {t}");
                total += 1;
            }
        }
    }
    println!("{total} value(s) extracted from {} page(s)", docs.len());
    Ok(())
}

/// `awrap bundle`: conversions and introspection for the wrapper
/// artifact generations (v1/v2 JSON ↔ v3 binary).
fn bundle_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("pack") => bundle_pack(&args[1..]),
        Some("unpack") => bundle_unpack(&args[1..]),
        Some("inspect") => bundle_inspect(&args[1..]),
        Some(other) => Err(format!(
            "unknown bundle subcommand {other:?}; try pack, unpack or inspect"
        )),
        None => Err("usage: awrap bundle <pack|unpack|inspect> --in FILE [--out FILE]".into()),
    }
}

fn bundle_io_paths(args: &[String]) -> Result<(String, String), String> {
    Ok((
        flag(args, "--in").ok_or("--in FILE is required")?,
        flag(args, "--out").ok_or("--out FILE is required")?,
    ))
}

/// `bundle pack`: any JSON artifact (v1 single wrapper or v2 bundle) →
/// the v3 binary bundle.
fn bundle_pack(args: &[String]) -> Result<(), String> {
    let (input, output) = bundle_io_paths(args)?;
    let payload = std::fs::read(&input).map_err(|e| format!("{input}: {e}"))?;
    let bundle = ArtifactReader::read_bytes(&payload).map_err(|e| e.to_string())?;
    let binary = bundle.to_binary();
    std::fs::write(&output, &binary).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "packed {} site(s): {} bytes of JSON -> {} bytes of v3 binary ({output})",
        bundle.len(),
        payload.len(),
        binary.len()
    );
    Ok(())
}

/// `bundle unpack`: a v3 binary bundle → the equivalent v2 JSON bundle
/// (the exact inverse of `pack`: pack → unpack round-trips
/// byte-identically).
fn bundle_unpack(args: &[String]) -> Result<(), String> {
    let (input, output) = bundle_io_paths(args)?;
    let bundle = BundleStore::open(&input)
        .and_then(|store| store.load_all())
        .map_err(|e| e.to_string())?;
    let json = bundle.to_json();
    std::fs::write(&output, &json).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "unpacked {} site(s) to {} bytes of v2 JSON ({output})",
        bundle.len(),
        json.len()
    );
    Ok(())
}

/// `bundle inspect`: header + index of a v3 binary bundle — site count
/// and per-segment sizes, without deserializing a single wrapper.
fn bundle_inspect(args: &[String]) -> Result<(), String> {
    let input = flag(args, "--in").ok_or("--in FILE is required")?;
    let total = std::fs::metadata(&input)
        .map(|m| m.len())
        .map_err(|e| format!("{input}: {e}"))?;
    let store = BundleStore::open(&input).map_err(|e| e.to_string())?;
    println!(
        "format: {} v{}",
        aw_core::BUNDLE_BIN_FORMAT,
        aw_core::BUNDLE_BIN_VERSION
    );
    println!("sites: {}", store.len());
    let segment_bytes: u64 = store.segments().map(|(_, len)| len).sum();
    println!(
        "bytes: {total} total ({segment_bytes} in segments, {} header + index)",
        total - segment_bytes
    );
    for (key, len) in store.segments() {
        println!("  {len:>8}  {key}");
    }
    Ok(())
}

fn extract_cmd(args: &[String]) -> Result<(), String> {
    let rule_str = flag(args, "--xpath").ok_or("--xpath RULE is required")?;
    let dir = flag(args, "--pages").ok_or("--pages DIR is required")?;
    let rule = parse_xpath(&rule_str).map_err(|e| e.to_string())?;
    for (i, html) in read_pages(&dir)?.iter().enumerate() {
        let doc = parse(html);
        for id in evaluate(&rule, &doc) {
            if let Some(t) = doc.text(id) {
                println!("page {i} | {t}");
            }
        }
    }
    Ok(())
}

fn experiment_cmd(args: &[String]) -> Result<(), String> {
    let name = args
        .first()
        .ok_or("experiment NAME required; see --help")?
        .as_str();
    if has_flag(args, "--quick") {
        std::env::set_var("AW_SCALE", "quick");
    }
    run_experiments(name)
}

fn run_experiments(name: &str) -> Result<(), String> {
    use aw_eval::experiments::{
        accuracy, calls, multitype, single_entity, table1, timing, variants,
    };
    use aw_eval::Method;

    let dealers = || {
        let cfg = match std::env::var("AW_SCALE").as_deref() {
            Ok("quick") => aw_sitegen::DealersConfig::small(24, 0xDEA1),
            _ => aw_sitegen::DealersConfig::default(),
        };
        let ds = aw_sitegen::generate_dealers(&cfg);
        let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        (ds, annot)
    };
    let disc = || {
        let cfg = match std::env::var("AW_SCALE").as_deref() {
            Ok("quick") => aw_sitegen::DiscConfig::small(6, 0xD15C),
            _ => aw_sitegen::DiscConfig::default(),
        };
        let ds = aw_sitegen::generate_disc(&cfg);
        let annot = DictionaryAnnotator::new(ds.track_dictionary.iter(), MatchMode::Exact);
        (ds, annot)
    };

    let known = [
        "fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig2f", "fig2g", "fig2h", "fig2i", "table1",
        "fig3a", "fig3b", "fig3c", "b2", "churn",
    ];
    let run_one = |id: &str| -> Result<(), String> {
        println!("── {id} ───────────────────────────────────────────");
        match id {
            "fig2a" => {
                let (ds, a) = dealers();
                println!(
                    "{}",
                    calls::run(&ds.sites, |s| a.annotate(&s.site), WrapperLanguage::Lr)
                );
            }
            "fig2b" => {
                let (ds, a) = dealers();
                println!(
                    "{}",
                    calls::run(&ds.sites, |s| a.annotate(&s.site), WrapperLanguage::XPath)
                );
            }
            "fig2c" => {
                let (ds, a) = dealers();
                println!("{}", timing::run(&ds.sites, |s| a.annotate(&s.site)));
            }
            "fig2d" | "fig2e" => {
                let (ds, a) = dealers();
                let lang = if id == "fig2d" {
                    WrapperLanguage::XPath
                } else {
                    WrapperLanguage::Lr
                };
                println!(
                    "{}",
                    accuracy::run(
                        "DEALERS",
                        &ds.sites,
                        |s| a.annotate(&s.site),
                        lang,
                        &[Method::Naive, Method::Ntw]
                    )
                );
            }
            "fig2f" | "fig2g" => {
                let (ds, a) = disc();
                let lang = if id == "fig2f" {
                    WrapperLanguage::XPath
                } else {
                    WrapperLanguage::Lr
                };
                println!(
                    "{}",
                    accuracy::run(
                        "DISC",
                        &ds.sites,
                        |s| a.annotate(&s.site),
                        lang,
                        &[Method::Naive, Method::Ntw]
                    )
                );
            }
            "fig2h" | "fig2i" => {
                let (ds, a) = dealers();
                let lang = if id == "fig2h" {
                    WrapperLanguage::XPath
                } else {
                    WrapperLanguage::Lr
                };
                println!(
                    "{}",
                    variants::run("DEALERS", &ds.sites, |s| a.annotate(&s.site), lang)
                );
            }
            "table1" => {
                let (ds, _) = dealers();
                println!("{}", table1::run(&ds.sites, 0x7AB1));
            }
            "fig3a" | "fig3b" => {
                let (ds, _) = dealers();
                println!("{}", multitype::run(&ds));
            }
            "fig3c" => {
                let cfg = match std::env::var("AW_SCALE").as_deref() {
                    Ok("quick") => aw_sitegen::ProductsConfig::small(4, 0x9800),
                    _ => aw_sitegen::ProductsConfig::default(),
                };
                let ds = aw_sitegen::generate_products(&cfg);
                let a = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
                println!(
                    "{}",
                    accuracy::run(
                        "PRODUCTS",
                        &ds.sites,
                        |s| a.annotate(&s.site),
                        WrapperLanguage::XPath,
                        &[Method::Naive, Method::Ntw]
                    )
                );
            }
            "b2" => {
                let (ds, _) = disc();
                println!("{}", single_entity::run(&ds));
            }
            "churn" => {
                use aw_eval::experiments::churn;
                let evolution = match std::env::var("AW_SCALE").as_deref() {
                    Ok("quick") => aw_sitegen::TemplateEvolution::small(0xC0DE),
                    _ => aw_sitegen::TemplateEvolution {
                        epochs: 5,
                        pages_per_epoch: 6,
                        ..aw_sitegen::TemplateEvolution::small(0xC0DE)
                    },
                };
                let model =
                    RankingModel::new(AnnotatorModel::new(0.9, 0.3), default_publication_model());
                println!("{}", churn::run(&evolution, &model));
            }
            other => return Err(format!("unknown experiment {other:?}; see --help")),
        }
        Ok(())
    };

    if name == "all" {
        for id in known {
            run_one(id)?;
        }
        Ok(())
    } else {
        run_one(name)
    }
}
